/**
 * @file
 * Tests for the tracing subsystem: ring buffer semantics (wrap,
 * overflow accounting), exporter well-formedness, the zero-perturbation
 * guarantee (tracing must not change simulated results), the UE
 * channel-overlap signature, and the sweep runner's partial flush of
 * aborted cells.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/runner/job.h"
#include "src/runner/sweep_runner.h"
#include "src/trace/trace_export.h"
#include "src/trace/trace_sink.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

TEST(TraceSink, StoresRecordsOldestFirst)
{
    TraceSink s(8);
    for (Cycle c = 0; c < 5; ++c)
        s.instant(TraceEventType::PageFault, traceTrackSm(0), c, c);
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s.totalEvents(), 5u);
    EXPECT_EQ(s.droppedEvents(), 0u);
    for (std::uint64_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(s.at(i).begin, i);
        EXPECT_EQ(s.at(i).arg0, i);
    }
}

TEST(TraceSink, RingWrapKeepsNewestAndCountsDrops)
{
    TraceSink s(8);
    for (Cycle c = 0; c < 20; ++c)
        s.instant(TraceEventType::PageFault, traceTrackSm(0), c, c);
    EXPECT_EQ(s.size(), 8u);
    EXPECT_EQ(s.capacity(), 8u);
    EXPECT_EQ(s.totalEvents(), 20u);
    EXPECT_EQ(s.droppedEvents(), 12u);
    // The 12 oldest records were overwritten: 12..19 remain, in order.
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(s.at(i).begin, 12 + i);
}

TEST(TraceSink, ZeroCapacityClampsToOne)
{
    TraceSink s(0);
    EXPECT_EQ(s.capacity(), 1u);
    for (Cycle c = 0; c < 3; ++c)
        s.instant(TraceEventType::PageFault, traceTrackSm(0), c);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.droppedEvents(), 2u);
    EXPECT_EQ(s.at(0).begin, 2u);
}

TEST(TraceSink, ClearResetsEverything)
{
    TraceSink s(4);
    for (Cycle c = 0; c < 9; ++c)
        s.instant(TraceEventType::Migration, kTraceTrackPcieH2d, c);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.totalEvents(), 0u);
    EXPECT_EQ(s.droppedEvents(), 0u);
}

TEST(TraceExport, ChromeJsonIsWellFormedAndSurfacesDrops)
{
    TraceSink s(4);
    for (Cycle c = 0; c < 6; ++c) {
        s.interval(TraceEventType::Migration, kTraceTrackPcieH2d,
                   c * 100, c * 100 + 50, /*vpn=*/c, /*bytes=*/65536);
    }
    TraceMeta meta;
    meta.bench = "unit";
    meta.workload = "W";
    meta.policy = "BASELINE";
    meta.scale = "tiny";
    meta.seed = 7;
    meta.ratio = 0.5;

    const std::string json = toChromeTraceJson(s, meta);
    EXPECT_NE(json.find(kTraceSchema), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":2"), std::string::npos);
    EXPECT_NE(json.find("\"retained_events\":4"), std::string::npos);
    EXPECT_NE(json.find("pcie_h2d"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check without a
    // JSON parser dependency; no string value contains them).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, CounterCsvHasHeaderRowsAndDropTrailer)
{
    TraceSink s(16);
    s.counter(TraceEventType::SmOccupancy, traceTrackSm(3), 1000, 5, 8);
    s.counter(TraceEventType::CommittedFrames, kTraceTrackMemory, 2000,
              42, 64);
    // Non-counter records must not appear in the CSV.
    s.interval(TraceEventType::Migration, kTraceTrackPcieH2d, 0, 10, 1);

    const std::string csv = toCounterCsv(s);
    EXPECT_NE(csv.find("cycle,track,counter,value"), std::string::npos);
    EXPECT_NE(csv.find("1000,sm3,sm_occupancy,5"), std::string::npos);
    EXPECT_NE(csv.find("2000,gpu_memory,committed_frames,42"),
              std::string::npos);
    EXPECT_EQ(csv.find("migration"), std::string::npos);
    EXPECT_NE(csv.find("# dropped_events,0"), std::string::npos);
}

/** Runs one tiny cell with tracing on or off; the system (and with it
 *  the trace sink) stays alive in @p keep_alive. */
RunResult
runTraced(Policy policy, bool tracing, TraceSink **sink_out,
          std::vector<std::unique_ptr<GpuUvmSystem>> &keep_alive)
{
    SimConfig config =
        paperConfig(0.5, deriveWorkloadSeed(1, "BFS-TWC"));
    config = applyPolicy(config, policy);
    config.trace.enabled = tracing;
    auto workload = WorkloadRegistry::instance().create("BFS-TWC");
    keep_alive.push_back(std::make_unique<GpuUvmSystem>(config));
    GpuUvmSystem &system = *keep_alive.back();
    const RunResult r = system.run(*workload, WorkloadScale::Tiny);
    if (sink_out)
        *sink_out = system.trace();
    return r;
}

TEST(TraceSystem, TracingDoesNotPerturbSimulatedResults)
{
    std::vector<std::unique_ptr<GpuUvmSystem>> keep;
    const RunResult off = runTraced(Policy::ToUe, false, nullptr, keep);
    TraceSink *sink = nullptr;
    const RunResult on = runTraced(Policy::ToUe, true, &sink, keep);

    ASSERT_NE(sink, nullptr);
    EXPECT_GT(sink->totalEvents(), 0u);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.sim_events, on.sim_events);
    EXPECT_EQ(off.batches, on.batches);
    EXPECT_EQ(off.migrations, on.migrations);
    EXPECT_EQ(off.evictions, on.evictions);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.context_switches, on.context_switches);
}

struct Span {
    Cycle begin, end;
};

std::vector<Span>
transferSpans(const TraceSink &sink, TraceTrack track)
{
    std::vector<Span> spans;
    sink.forEach([&](const TraceRecord &r) {
        const TraceEventType t = r.eventType();
        if (r.track == track && r.begin < r.end &&
            (t == TraceEventType::Migration ||
             t == TraceEventType::Eviction)) {
            spans.push_back({r.begin, r.end});
        }
    });
    std::sort(spans.begin(), spans.end(),
              [](const Span &a, const Span &b) {
                  return a.begin < b.begin;
              });
    return spans;
}

std::uint64_t
overlapCycles(const std::vector<Span> &a, const std::vector<Span> &b)
{
    std::uint64_t overlap = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const Cycle lo = std::max(a[i].begin, b[j].begin);
        const Cycle hi = std::min(a[i].end, b[j].end);
        if (lo < hi)
            overlap += hi - lo;
        if (a[i].end < b[j].end)
            ++i;
        else
            ++j;
    }
    return overlap;
}

TEST(TraceSystem, UnobtrusiveEvictionOverlapsPcieChannels)
{
    std::vector<std::unique_ptr<GpuUvmSystem>> keep;
    TraceSink *base_sink = nullptr;
    TraceSink *toue_sink = nullptr;
    runTraced(Policy::Baseline, true, &base_sink, keep);
    runTraced(Policy::ToUe, true, &toue_sink, keep);
    ASSERT_NE(base_sink, nullptr);
    ASSERT_NE(toue_sink, nullptr);

    const std::uint64_t base_overlap = overlapCycles(
        transferSpans(*base_sink, kTraceTrackPcieH2d),
        transferSpans(*base_sink, kTraceTrackPcieD2h));
    const std::uint64_t toue_overlap = overlapCycles(
        transferSpans(*toue_sink, kTraceTrackPcieH2d),
        transferSpans(*toue_sink, kTraceTrackPcieD2h));

    // Fig 4 vs Fig 10: the baseline serializes evict->migrate, UE
    // pipelines the two directions on the full-duplex link.
    EXPECT_GT(toue_overlap, base_overlap);
}

TEST(SweepRunnerTrace, WritesOneTracePerCell)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) / "bauvm_traces_ok";
    std::filesystem::remove_all(dir);

    SweepSpec spec;
    spec.bench = "trace_smoke";
    spec.workloads = {"BFS-TWC"};
    spec.policies = {Policy::Baseline};
    spec.opt.scale = WorkloadScale::Tiny;
    spec.opt.jobs = 1;
    spec.opt.trace_dir = dir.string();
    spec.verbose = false;

    SweepRunner runner(std::move(spec));
    const SweepResult result = runner.run();
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_TRUE(result.cells[0].ok);

    const std::filesystem::path json =
        dir / "trace_smoke__BFS-TWC__BASELINE.trace.json";
    const std::filesystem::path csv =
        dir / "trace_smoke__BFS-TWC__BASELINE.counters.csv";
    EXPECT_TRUE(std::filesystem::exists(json));
    EXPECT_TRUE(std::filesystem::exists(csv));

    std::ifstream in(json);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find(kTraceSchema), std::string::npos);
    EXPECT_NE(buf.str().find("\"partial\":false"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(SweepRunnerTrace, AbortedCellFlushesPartialTrace)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        "bauvm_traces_partial";
    std::filesystem::remove_all(dir);

    SweepSpec spec;
    spec.bench = "trace_smoke";
    spec.workloads = {"BFS-TWC"};
    spec.policies = {Policy::Baseline};
    // preload with memory_ratio < 1 hits fatal() inside the run, after
    // the system (and its trace sink) exists — the abort-capture path.
    spec.variants.push_back(
        {"preload", [](SimConfig &c) { c.uvm.preload = true; }});
    spec.opt.scale = WorkloadScale::Tiny;
    spec.opt.jobs = 1;
    spec.opt.trace_dir = dir.string();
    spec.verbose = false;

    SweepRunner runner(std::move(spec));
    const SweepResult result = runner.run();
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_FALSE(result.cells[0].ok);

    const std::filesystem::path partial =
        dir /
        "trace_smoke__BFS-TWC__BASELINE__preload.trace.json.partial";
    ASSERT_TRUE(std::filesystem::exists(partial));

    std::ifstream in(partial);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"partial\":true"), std::string::npos);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace bauvm
