/**
 * @file
 * Tests for the parallel experiment-runner subsystem (src/runner):
 * thread-pool/queue primitives, deterministic seeding, parallel ==
 * serial results, failure capture, progress reporting and the JSON
 * export.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/graph/graph_cache.h"
#include "src/runner/job.h"
#include "src/runner/job_queue.h"
#include "src/runner/json_writer.h"
#include "src/runner/sweep_runner.h"
#include "src/runner/thread_pool.h"
#include "src/sim/log.h"

namespace bauvm
{
namespace
{

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

TEST(JobQueue, PushPopFifo)
{
    JobQueue q;
    std::vector<int> order;
    ASSERT_TRUE(q.push([&] { order.push_back(1); }));
    ASSERT_TRUE(q.push([&] { order.push_back(2); }));
    EXPECT_EQ(q.size(), 2u);

    JobQueue::Thunk t;
    ASSERT_TRUE(q.pop(&t));
    t();
    ASSERT_TRUE(q.pop(&t));
    t();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(JobQueue, CloseRejectsPushAndDrains)
{
    JobQueue q;
    ASSERT_TRUE(q.push([] {}));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push([] {}));

    JobQueue::Thunk t;
    EXPECT_TRUE(q.pop(&t)); // drains the pre-close thunk
    EXPECT_FALSE(q.pop(&t)); // closed and empty
}

TEST(ThreadPool, RunsEveryThunkAcrossWorkers)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(pool.submit([&count] { ++count; }));
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

// ---------------------------------------------------------------------
// Seeding
// ---------------------------------------------------------------------

TEST(JobSeeding, WorkloadSeedIgnoresPolicyAndIsStable)
{
    const std::uint64_t a = deriveWorkloadSeed(1, "BFS-TTC");
    EXPECT_EQ(a, deriveWorkloadSeed(1, "BFS-TTC"));
    EXPECT_NE(a, deriveWorkloadSeed(2, "BFS-TTC"));
    EXPECT_NE(a, deriveWorkloadSeed(1, "PR"));
    EXPECT_NE(a, 0u);
}

TEST(JobSeeding, JobSeedIsUniquePerCell)
{
    std::set<std::uint64_t> seeds;
    for (const char *w : {"BFS-TTC", "PR"}) {
        for (Policy p : {Policy::Baseline, Policy::To, Policy::Ue}) {
            for (const char *v : {"", "x"})
                seeds.insert(deriveJobSeed(1, w, p, v));
        }
    }
    EXPECT_EQ(seeds.size(), 12u);
}

// ---------------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------------

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.kernels, b.kernels);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.footprint_bytes, b.footprint_bytes);
    EXPECT_EQ(a.capacity_pages, b.capacity_pages);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_DOUBLE_EQ(a.avg_batch_pages, b.avg_batch_pages);
    EXPECT_DOUBLE_EQ(a.avg_batch_time, b.avg_batch_time);
    EXPECT_DOUBLE_EQ(a.avg_handling_time, b.avg_handling_time);
    EXPECT_EQ(a.demand_pages, b.demand_pages);
    EXPECT_EQ(a.prefetched_pages, b.prefetched_pages);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.premature_evictions, b.premature_evictions);
    EXPECT_EQ(a.context_switches, b.context_switches);
    EXPECT_EQ(a.context_switch_cycles, b.context_switch_cycles);
    EXPECT_EQ(a.pcie_h2d_bytes, b.pcie_h2d_bytes);
    EXPECT_EQ(a.pcie_d2h_bytes, b.pcie_d2h_bytes);
    ASSERT_EQ(a.batch_records.size(), b.batch_records.size());
    for (std::size_t i = 0; i < a.batch_records.size(); ++i) {
        EXPECT_EQ(a.batch_records[i].begin, b.batch_records[i].begin);
        EXPECT_EQ(a.batch_records[i].end, b.batch_records[i].end);
        EXPECT_EQ(a.batch_records[i].fault_pages,
                  b.batch_records[i].fault_pages);
    }
}

BenchOptions
tinyOptions(std::size_t jobs)
{
    BenchOptions opt;
    opt.scale = WorkloadScale::Tiny;
    opt.jobs = jobs;
    return opt;
}

TEST(SweepRunner, ParallelMatrixMatchesSerial)
{
    const std::vector<std::string> workloads = {"BFS-TTC", "PR",
                                                "SSSP-TWC"};
    const std::vector<Policy> policies = {Policy::Baseline, Policy::To,
                                          Policy::Ue};

    auto serial = runMatrix(workloads, policies, tinyOptions(1),
                            /*verbose=*/false);
    auto parallel = runMatrix(workloads, policies, tinyOptions(4),
                              /*verbose=*/false);

    for (const auto &w : workloads) {
        for (Policy p : policies) {
            SCOPED_TRACE(w + "/" + policyName(p));
            expectSameResult(serial[w][p], parallel[w][p]);
        }
    }
}

TEST(SweepRunner, FailingJobIsCapturedWithoutAbortingTheSweep)
{
    SweepSpec spec;
    spec.bench = "test";
    // "NOPE" makes WorkloadRegistry::create() fatal() inside the
    // job; the runner
    // must capture it and still run the valid cell.
    spec.workloads = {"NOPE", "BFS-TTC"};
    spec.policies = {Policy::Baseline};
    spec.opt = tinyOptions(2);
    spec.verbose = false;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();

    ASSERT_EQ(sweep.cells.size(), 2u);
    EXPECT_EQ(sweep.failedCells(), 1u);

    const CellOutcome *bad = sweep.find("NOPE", Policy::Baseline);
    ASSERT_NE(bad, nullptr);
    EXPECT_FALSE(bad->ok);
    EXPECT_NE(bad->error.find("unknown workload"), std::string::npos)
        << bad->error;

    const CellOutcome *good = sweep.find("BFS-TTC", Policy::Baseline);
    ASSERT_NE(good, nullptr);
    EXPECT_TRUE(good->ok);
    EXPECT_GT(good->result.cycles, 0u);
}

TEST(SweepRunner, ProgressFiresExactlyOncePerCell)
{
    SweepSpec spec;
    spec.bench = "test";
    spec.workloads = {"BFS-TTC", "PR"};
    spec.policies = {Policy::Baseline, Policy::Ue};
    spec.opt = tinyOptions(4);
    spec.verbose = false;

    SweepRunner runner(spec);
    ASSERT_EQ(runner.cellCount(), 4u);

    std::vector<std::size_t> dones;
    std::set<std::string> cells_seen;
    runner.setProgress([&](const CellOutcome &cell, std::size_t done,
                           std::size_t total) {
        EXPECT_EQ(total, 4u);
        dones.push_back(done);
        cells_seen.insert(cell.workload + "/" + policyName(cell.policy));
    });
    const SweepResult sweep = runner.run();

    EXPECT_EQ(sweep.cells.size(), 4u);
    // One callback per cell, serialized: done counts 1..total with no
    // duplicates or gaps.
    EXPECT_EQ(dones, (std::vector<std::size_t>{1, 2, 3, 4}));
    EXPECT_EQ(cells_seen.size(), 4u);
}

TEST(SweepRunner, SoftTimeoutMarksCellFailed)
{
    SweepSpec spec;
    spec.bench = "test";
    spec.workloads = {"BFS-TTC"};
    spec.policies = {Policy::Baseline};
    spec.opt = tinyOptions(1);
    spec.opt.timeout_s = 1e-9; // everything exceeds this
    spec.verbose = false;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    ASSERT_EQ(sweep.cells.size(), 1u);
    EXPECT_FALSE(sweep.cells[0].ok);
    EXPECT_TRUE(sweep.cells[0].timed_out);
    EXPECT_NE(sweep.cells[0].error.find("soft timeout"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNests)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.field("s", "a\"b\\c\nd");
    w.field("b", true);
    w.field("u", std::uint64_t{42});
    w.field("d", 1.5);
    w.beginArray("a");
    w.value(std::uint64_t{1});
    w.value("x");
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"b\":true,"
                       "\"u\":42,\"d\":1.5,\"a\":[1,\"x\"]}");
}

TEST(SweepResult, JsonExportCarriesSchemaAndCells)
{
    SweepSpec spec;
    spec.bench = "test_export";
    spec.workloads = {"BFS-TTC"};
    spec.policies = {Policy::Baseline};
    spec.opt = tinyOptions(1);
    spec.verbose = false;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    const std::string json = sweep.toJson();

    EXPECT_NE(json.find("\"schema\": \"bauvm.sweep/1.3\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bench\": \"test_export\""),
              std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"BFS-TTC\""),
              std::string::npos);
    EXPECT_NE(json.find("\"cycles\": "), std::string::npos);
    // Memory data path counters added in schema minor /1.1.
    EXPECT_NE(json.find("\"translations\": "), std::string::npos);
    EXPECT_NE(json.find("\"tlb_hit_rate\": "), std::string::npos);
    EXPECT_NE(json.find("\"faults_per_kcycle\": "), std::string::npos);

    ASSERT_EQ(sweep.cells.size(), 1u);
    ASSERT_TRUE(sweep.cells[0].ok);
    const RunResult &r = sweep.cells[0].result;
    EXPECT_GT(r.translations, 0u);
    EXPECT_GE(r.tlb_hit_rate, 0.0);
    EXPECT_LE(r.tlb_hit_rate, 1.0);
    EXPECT_GE(r.faults_per_kcycle, 0.0);

    const std::string path = ::testing::TempDir() + "sweep_test.json";
    EXPECT_TRUE(sweep.writeJson(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Cross-policy graph memoization
// ---------------------------------------------------------------------

TEST(SweepRunner, GraphCacheReusesBuildsAndStaysTransparent)
{
    SweepSpec spec;
    spec.bench = "cache_check";
    spec.workloads = {"BFS-TTC"};
    spec.policies = {Policy::Baseline, Policy::To};
    spec.opt.scale = WorkloadScale::Tiny;
    spec.opt.seed = 7;
    spec.opt.ratio = 0.5;
    spec.opt.jobs = 2;
    spec.verbose = false;

    auto &cache = GraphBuildCache::instance();
    const std::uint64_t builds_before = cache.builds();
    const std::uint64_t hits_before = cache.hits();
    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    // Two policy cells share one workload build: 1 build, 1 reuse.
    EXPECT_EQ(cache.builds() - builds_before, 1u);
    EXPECT_EQ(cache.hits() - hits_before, 1u);

    // Memoization must be invisible in results: a cached cell equals
    // an uncached standalone run of the same derived config.
    const CellOutcome *cell = sweep.find("BFS-TTC", Policy::To);
    ASSERT_NE(cell, nullptr);
    SimConfig config = applyPolicy(
        paperConfig(spec.opt.ratio, deriveWorkloadSeed(7, "BFS-TTC")),
        Policy::To);
    const RunResult standalone =
        runWorkload(config, "BFS-TTC", WorkloadScale::Tiny);
    EXPECT_EQ(cell->result.cycles, standalone.cycles);
    EXPECT_EQ(cell->result.instructions, standalone.instructions);
    EXPECT_EQ(cell->result.evictions, standalone.evictions);
}

// ---------------------------------------------------------------------
// Abort capture
// ---------------------------------------------------------------------

TEST(AbortCapture, FatalThrowsOnlyWhileGuardActive)
{
    EXPECT_FALSE(ScopedAbortCapture::active());
    {
        ScopedAbortCapture guard;
        EXPECT_TRUE(ScopedAbortCapture::active());
        bool threw = false;
        try {
            fatal("synthetic failure %d", 7);
        } catch (const SimAbort &e) {
            threw = true;
            EXPECT_FALSE(e.isPanic());
            EXPECT_NE(std::string(e.what()).find("synthetic failure 7"),
                      std::string::npos);
        }
        EXPECT_TRUE(threw);

        try {
            panic("synthetic panic");
        } catch (const SimAbort &e) {
            EXPECT_TRUE(e.isPanic());
        }
    }
    EXPECT_FALSE(ScopedAbortCapture::active());
}

} // namespace
} // namespace bauvm
