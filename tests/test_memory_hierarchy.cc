/**
 * @file
 * Tests for the composed memory hierarchy: translation path, fault
 * detection, cache stacking and eviction shootdown.
 */

#include <gtest/gtest.h>

#include "src/mem/memory_hierarchy.h"
#include "src/mem/page_table.h"

namespace bauvm
{
namespace
{

constexpr std::uint64_t kPage = 64 * 1024;

class MemoryHierarchyTest : public ::testing::Test
{
  protected:
    MemoryHierarchyTest() : hier_(config_, 2, kPage, pt_) {}

    MemConfig config_;
    PageTable pt_;
    MemoryHierarchy hier_;
};

TEST_F(MemoryHierarchyTest, NonResidentPageFaults)
{
    const MemResult r = hier_.access(0, 0x10000, false, 0);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(r.vpn, 1u);
    // Fault detection takes at least a full cold walk.
    EXPECT_GE(r.done, 4 * config_.dram_latency);
    EXPECT_EQ(hier_.faults(), 1u);
}

TEST_F(MemoryHierarchyTest, ResidentPageCompletes)
{
    pt_.map(1, 1);
    const MemResult r = hier_.access(0, 0x10000, false, 0);
    EXPECT_FALSE(r.fault);
    EXPECT_GT(r.done, 0u);
}

TEST_F(MemoryHierarchyTest, TlbHitSecondAccessIsFaster)
{
    pt_.map(1, 1);
    const MemResult first = hier_.access(0, 0x10000, false, 0);
    // Second access to the same line: L1 TLB hit + L1 cache hit.
    const Cycle start = first.done;
    const MemResult second = hier_.access(0, 0x10000, false, start);
    EXPECT_LT(second.done - start, first.done);
    EXPECT_EQ(second.done - start,
              config_.l1_tlb.hit_latency + config_.l1.hit_latency);
}

TEST_F(MemoryHierarchyTest, FaultDoesNotFillTlb)
{
    hier_.access(0, 0x10000, false, 0); // faults
    pt_.map(1, 1);
    // Next access must still walk (TLB was not filled by the fault),
    // but now succeeds.
    const MemResult r = hier_.access(0, 0x10000, false, 100000);
    EXPECT_FALSE(r.fault);
    EXPECT_GE(r.done - 100000, config_.walk_cache_latency);
}

TEST_F(MemoryHierarchyTest, PerSmL1TlbsArePrivate)
{
    pt_.map(1, 1);
    hier_.access(0, 0x10000, false, 0);
    EXPECT_EQ(hier_.l1Tlb(0).misses(), 1u);
    hier_.access(1, 0x10000, false, 0);
    // SM1 missed its own L1 TLB but hit the shared L2 TLB.
    EXPECT_EQ(hier_.l1Tlb(1).misses(), 1u);
    EXPECT_GE(hier_.l2Tlb().hits(), 1u);
}

TEST_F(MemoryHierarchyTest, InvalidatePageShootsDownAllTlbs)
{
    pt_.map(1, 1);
    hier_.access(0, 0x10000, false, 0);
    hier_.access(1, 0x10000, false, 0);
    hier_.invalidatePage(1);
    pt_.unmap(1);
    const MemResult r = hier_.access(0, 0x10000, false, 50000);
    EXPECT_TRUE(r.fault); // no stale TLB hit
}

TEST_F(MemoryHierarchyTest, PageVersionKillsStaleCacheLines)
{
    pt_.map(1, 1);
    hier_.access(0, 0x10000, false, 0);
    EXPECT_EQ(hier_.l1Cache(0).misses(), 1u);
    // Evict and re-migrate the page: version bump.
    hier_.invalidatePage(1);
    pt_.unmap(1);
    pt_.map(1, 2);
    hier_.access(0, 0x10000, false, 100000);
    // The line key changed with the version: a fresh miss, not a hit
    // on stale data.
    EXPECT_EQ(hier_.l1Cache(0).misses(), 2u);
}

TEST_F(MemoryHierarchyTest, L2SharedAcrossSms)
{
    pt_.map(1, 1);
    hier_.access(0, 0x10000, false, 0);
    const auto l2_misses = hier_.l2Cache().misses();
    hier_.access(1, 0x10000, false, 1000);
    // SM1 misses its private L1 but hits shared L2.
    EXPECT_EQ(hier_.l2Cache().misses(), l2_misses);
    EXPECT_GE(hier_.l2Cache().hits(), 1u);
}

TEST_F(MemoryHierarchyTest, ExtraL2LatencySlowsMisses)
{
    pt_.map(1, 1);
    MemConfig config;
    PageTable pt;
    pt.map(1, 1);
    MemoryHierarchy plain(config, 1, kPage, pt);
    MemoryHierarchy slowed(config, 1, kPage, pt);
    slowed.setExtraL2Latency(100);
    const Cycle t0 = plain.access(0, 0x10000, false, 0).done;
    const Cycle t1 = slowed.access(0, 0x10000, false, 0).done;
    EXPECT_EQ(t1, t0 + 100);
}

TEST_F(MemoryHierarchyTest, MshrLimitStallsFloodOfMisses)
{
    MemConfig config;
    config.mshrs_per_sm = 4;
    PageTable pt;
    for (PageNum p = 0; p < 64; ++p)
        pt.map(p, p);
    MemoryHierarchy hier(config, 1, kPage, pt);
    // 64 distinct lines, same cycle: far more misses than MSHRs.
    for (int i = 0; i < 64; ++i)
        hier.access(0, static_cast<VAddr>(i) * kPage, false, 0);
    EXPECT_GT(hier.mshrStallCycles(), 0u);
}

} // namespace
} // namespace bauvm
