/**
 * @file
 * Tests for the ETC baseline framework (memory-aware throttling and
 * capacity compression).
 */

#include <gtest/gtest.h>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/etc/etc_framework.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

TEST(Etc, CapacityCompressionGrowsEffectiveMemory)
{
    SimConfig plain = paperConfig(0.5);
    SimConfig etc = applyPolicy(paperConfig(0.5), Policy::Etc);

    auto wl_a = WorkloadRegistry::instance().create("PR");
    GpuUvmSystem sys_a(plain);
    sys_a.run(*wl_a, WorkloadScale::Tiny);
    auto wl_b = WorkloadRegistry::instance().create("PR");
    GpuUvmSystem sys_b(etc);
    sys_b.run(*wl_b, WorkloadScale::Tiny);

    EXPECT_GT(sys_b.memoryManager().capacityPages(),
              sys_a.memoryManager().capacityPages());
}

TEST(Etc, CompressionChargesL2Latency)
{
    // With everything resident (no faults), ETC's CC still slows every
    // L2 access: a preloaded ETC run must be slower than plain preload.
    SimConfig plain = paperConfig(0.0);
    plain.uvm.preload = true;
    SimConfig etc = plain;
    etc.etc.enabled = true;
    const RunResult rp =
        runWorkload(plain, "PR", WorkloadScale::Tiny, true);
    const RunResult re =
        runWorkload(etc, "PR", WorkloadScale::Tiny, true);
    EXPECT_GT(re.cycles, rp.cycles);
}

TEST(Etc, ThrottlingTriggersUnderOversubscription)
{
    SimConfig config = applyPolicy(paperConfig(0.25), Policy::Etc);
    auto workload = WorkloadRegistry::instance().create("BFS-TWC");
    GpuUvmSystem system(config);
    system.run(*workload, WorkloadScale::Tiny);
    workload->validate();
    // With 25% memory there were evictions, so MT must have engaged at
    // some point (throttled set may have been restored later).
}

TEST(Etc, NoThrottleWithoutEvictions)
{
    // At ratio 1.0 nothing is evicted; MT must never trigger, so all
    // SMs stay enabled and the run matches plain CC behaviour.
    SimConfig config = applyPolicy(paperConfig(1.0), Policy::Etc);
    const RunResult r =
        runWorkload(config, "PR", WorkloadScale::Tiny, true);
    EXPECT_EQ(r.evictions, 0u);
}

TEST(Etc, RunsAllIrregularWorkloads)
{
    for (const auto &name : {"BFS-TTC", "KCORE"}) {
        SimConfig config = applyPolicy(paperConfig(0.5), Policy::Etc);
        const RunResult r =
            runWorkload(config, name, WorkloadScale::Tiny, true);
        EXPECT_GT(r.cycles, 0u);
    }
}

} // namespace
} // namespace bauvm
