/**
 * @file
 * Tests for the graph substrate: CSR construction, generators and the
 * reference algorithms (checked against hand-computed small cases).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "src/graph/csr_graph.h"
#include "src/graph/generator.h"
#include "src/graph/reference_algorithms.h"

namespace bauvm
{
namespace
{

CsrGraph
pathGraph(VertexId n)
{
    // 0 - 1 - 2 - ... - (n-1), undirected.
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (VertexId v = 0; v + 1 < n; ++v) {
        edges.emplace_back(v, v + 1);
        edges.emplace_back(v + 1, v);
    }
    return CsrGraph::fromEdges(n, edges);
}

TEST(CsrGraph, FromEdgesBasics)
{
    const CsrGraph g = CsrGraph::fromEdges(
        3, {{0, 1}, {0, 2}, {2, 0}});
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 0u);
    EXPECT_EQ(g.degree(2), 1u);
    const auto n0 = g.neighbors(0);
    EXPECT_EQ(n0[0], 1u);
    EXPECT_EQ(n0[1], 2u);
    g.validate();
}

TEST(CsrGraph, WeightsParallelToEdges)
{
    const CsrGraph g = CsrGraph::fromEdges(
        2, {{0, 1}, {1, 0}}, {7, 9});
    EXPECT_TRUE(g.weighted());
    EXPECT_EQ(g.edgeWeights(0)[0], 7u);
    EXPECT_EQ(g.edgeWeights(1)[0], 9u);
}

TEST(Generator, RmatIsDeterministic)
{
    RmatParams p;
    p.num_vertices = 256;
    p.num_edges = 1024;
    p.seed = 5;
    const CsrGraph a = generateRmat(p);
    const CsrGraph b = generateRmat(p);
    EXPECT_EQ(a.rowOffsets(), b.rowOffsets());
    EXPECT_EQ(a.colIndices(), b.colIndices());
}

TEST(Generator, RmatUndirectedIsSymmetric)
{
    RmatParams p;
    p.num_vertices = 128;
    p.num_edges = 512;
    const CsrGraph g = generateRmat(p);
    // Build a directed multiset and check symmetry by counting.
    std::map<std::pair<VertexId, VertexId>, int> count;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (VertexId nb : g.neighbors(v))
            ++count[{v, nb}];
    }
    for (const auto &[e, c] : count) {
        const auto reverse = std::make_pair(e.second, e.first);
        EXPECT_EQ(c, count[reverse]);
    }
}

TEST(Generator, RmatIsSkewed)
{
    RmatParams p;
    p.num_vertices = 4096;
    p.num_edges = 32768;
    const CsrGraph g = generateRmat(p);
    std::uint64_t max_deg = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    const double avg = static_cast<double>(g.numEdges()) /
                       g.numVertices();
    // Power-law-ish: the hub dwarfs the average degree.
    EXPECT_GT(static_cast<double>(max_deg), 10.0 * avg);
}

TEST(Generator, UniformHasNoComparableSkew)
{
    const CsrGraph g = generateUniform(4096, 32768, true, false, 3);
    std::uint64_t max_deg = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    const double avg = static_cast<double>(g.numEdges()) /
                       g.numVertices();
    EXPECT_LT(static_cast<double>(max_deg), 5.0 * avg);
}

TEST(Generator, GridHasBoundedDegree)
{
    const CsrGraph g = generateGrid(8, false, 1);
    EXPECT_EQ(g.numVertices(), 64u);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_LE(g.degree(v), 4u);
}

TEST(Reference, BfsOnPath)
{
    const CsrGraph g = pathGraph(5);
    const auto levels = reference::bfsLevels(g, 0);
    for (VertexId v = 0; v < 5; ++v)
        EXPECT_EQ(levels[v], v);
}

TEST(Reference, BfsUnreachableIsInfinity)
{
    const CsrGraph g =
        CsrGraph::fromEdges(3, {{0, 1}, {1, 0}}); // 2 isolated
    const auto levels = reference::bfsLevels(g, 0);
    EXPECT_EQ(levels[2], reference::kInfinity);
}

TEST(Reference, SsspPrefersLighterDetour)
{
    // 0->1 weight 10; 0->2 weight 1, 2->1 weight 2: best 0->2->1 = 3.
    const CsrGraph g = CsrGraph::fromEdges(
        3, {{0, 1}, {0, 2}, {2, 1}}, {10, 1, 2});
    const auto dist = reference::ssspDistances(g, 0);
    EXPECT_EQ(dist[1], 3u);
    EXPECT_EQ(dist[2], 1u);
}

TEST(Reference, PageRankSumsToOneOnConnectedGraph)
{
    const CsrGraph g = pathGraph(16);
    const auto pr = reference::pageRank(g, 20);
    const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6);
    // Ends of a path rank lower than the middle.
    EXPECT_LT(pr[0], pr[8]);
}

TEST(Reference, KcoreOfTriangleWithTail)
{
    // Triangle 0-1-2 plus tail 2-3.
    const CsrGraph g = CsrGraph::fromEdges(
        4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0},
            {2, 3}, {3, 2}});
    const auto core = reference::kcore(g);
    EXPECT_EQ(core[0], 2u);
    EXPECT_EQ(core[1], 2u);
    EXPECT_EQ(core[2], 2u);
    EXPECT_EQ(core[3], 1u);
}

TEST(Reference, BcOnPathCountsInteriorVertices)
{
    // Path of 5 from source 0: delta[v] = number of shortest paths from
    // 0 passing through v = (#vertices beyond v).
    const CsrGraph g = pathGraph(5);
    const auto bc = reference::bcFromSource(g, 0);
    EXPECT_DOUBLE_EQ(bc[1], 3.0);
    EXPECT_DOUBLE_EQ(bc[2], 2.0);
    EXPECT_DOUBLE_EQ(bc[3], 1.0);
    EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Reference, ProperColoringCheck)
{
    const CsrGraph g = pathGraph(4);
    EXPECT_TRUE(reference::isProperColoring(g, {0, 1, 0, 1}));
    EXPECT_FALSE(reference::isProperColoring(g, {0, 0, 1, 0}));
    EXPECT_FALSE(reference::isProperColoring(g, {0, 1})); // wrong size
}

} // namespace
} // namespace bauvm
