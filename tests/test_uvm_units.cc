/**
 * @file
 * Unit tests for the UVM building blocks: PCIe link, fault buffer,
 * GPU memory manager, lifetime tracker, compression, prefetcher.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/uvm/compression.h"
#include "src/uvm/fault_buffer.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/lifetime_tracker.h"
#include "src/uvm/pcie_link.h"
#include "src/uvm/prefetcher.h"

namespace bauvm
{
namespace
{

TEST(PcieLink, TransferTimeMatchesBandwidth)
{
    UvmConfig config; // 15.75 GB/s
    PcieLink link(config);
    const Cycle t = link.transferCycles(64 * 1024);
    // 65536 B / 15.75 B per cycle = 4161 cycles.
    EXPECT_EQ(t, 4161u);
}

TEST(PcieLink, SameDirectionIsFifo)
{
    UvmConfig config;
    PcieLink link(config);
    const Cycle d1 = link.transfer(PcieDir::HostToDevice, 64 * 1024, 0);
    const Cycle d2 = link.transfer(PcieDir::HostToDevice, 64 * 1024, 0);
    EXPECT_EQ(d2, 2 * d1);
}

TEST(PcieLink, DirectionsAreIndependent)
{
    UvmConfig config;
    PcieLink link(config);
    const Cycle h = link.transfer(PcieDir::HostToDevice, 64 * 1024, 0);
    const Cycle d = link.transfer(PcieDir::DeviceToHost, 64 * 1024, 0);
    EXPECT_EQ(h, d); // full duplex: no serialization
}

TEST(PcieLink, AsymmetricD2hBandwidth)
{
    UvmConfig config;
    config.pcie_d2h_gbps = 31.5; // 2x the H2D rate
    PcieLink link(config);
    const Cycle h = link.transferCycles(64 * 1024,
                                        PcieDir::HostToDevice);
    const Cycle d = link.transferCycles(64 * 1024,
                                        PcieDir::DeviceToHost);
    EXPECT_EQ(d, h / 2);
    const Cycle done =
        link.transfer(PcieDir::DeviceToHost, 64 * 1024, 0);
    EXPECT_EQ(done, d);
}

TEST(PcieLink, ZeroD2hConfigMeansSymmetric)
{
    UvmConfig config; // pcie_d2h_gbps = 0
    PcieLink link(config);
    EXPECT_EQ(link.transferCycles(4096, PcieDir::HostToDevice),
              link.transferCycles(4096, PcieDir::DeviceToHost));
}

TEST(PcieLink, StatsPerDirection)
{
    UvmConfig config;
    PcieLink link(config);
    link.transfer(PcieDir::HostToDevice, 100, 0);
    link.transfer(PcieDir::DeviceToHost, 200, 0);
    EXPECT_EQ(link.bytesMoved(PcieDir::HostToDevice), 100u);
    EXPECT_EQ(link.bytesMoved(PcieDir::DeviceToHost), 200u);
    EXPECT_EQ(link.transfers(PcieDir::HostToDevice), 1u);
}

TEST(FaultBuffer, DeduplicatesPerPage)
{
    PageMetaTable meta;
    FaultBuffer fb(8, meta);
    fb.insert(5, 10);
    fb.insert(5, 11);
    fb.insert(6, 12);
    EXPECT_EQ(fb.size(), 2u);
    const auto drained = fb.drain();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].vpn, 5u);
    EXPECT_EQ(drained[0].duplicates, 2u);
    EXPECT_EQ(drained[0].first_cycle, 10u);
    EXPECT_TRUE(fb.empty());
}

TEST(FaultBuffer, OverflowQueuesAndRefills)
{
    PageMetaTable meta;
    FaultBuffer fb(2, meta);
    fb.insert(1, 0);
    fb.insert(2, 0);
    fb.insert(3, 0); // overflow
    EXPECT_EQ(fb.overflows(), 1u);
    EXPECT_EQ(fb.size(), 2u);
    const auto first = fb.drain();
    EXPECT_EQ(first.size(), 2u);
    // The overflowed fault is now buffered for the next batch.
    EXPECT_EQ(fb.size(), 1u);
    const auto second = fb.drain();
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].vpn, 3u);
}

TEST(FaultBuffer, CountsTotalFaults)
{
    PageMetaTable meta;
    FaultBuffer fb(8, meta);
    fb.insert(1, 0);
    fb.insert(1, 1);
    fb.insert(2, 2);
    EXPECT_EQ(fb.totalFaults(), 3u);
}

TEST(GpuMemoryManager, CapacityAccounting)
{
    UvmConfig config;
    GpuMemoryManager m(config, 2);
    EXPECT_TRUE(m.hasFreeFrame());
    m.reserveFrame();
    m.commitPage(10, 0);
    m.reserveFrame();
    m.commitPage(11, 0);
    EXPECT_TRUE(m.atCapacity());
    EXPECT_EQ(m.committedFrames(), 2u);
}

TEST(GpuMemoryManager, AgedLruEvictsOldestAllocation)
{
    UvmConfig config;
    GpuMemoryManager m(config, 3);
    for (PageNum p : {1, 2, 3}) {
        m.reserveFrame();
        m.commitPage(p, p);
    }
    PageNum victim = 0;
    EXPECT_TRUE(m.beginEviction(&victim, 100));
    EXPECT_EQ(victim, 1u); // allocation order, not access order
    EXPECT_FALSE(m.isResident(1));
    // Frame still committed until the transfer lands.
    EXPECT_EQ(m.committedFrames(), 3u);
    m.completeEviction(victim);
    EXPECT_EQ(m.committedFrames(), 2u);
}

TEST(GpuMemoryManager, PrematureEvictionDetectedOnRefault)
{
    UvmConfig config;
    GpuMemoryManager m(config, 1);
    m.reserveFrame();
    m.commitPage(7, 0);
    PageNum victim;
    m.beginEviction(&victim, 10);
    m.completeEviction(victim);
    EXPECT_EQ(m.prematureEvictions(), 0u);
    m.reserveFrame();
    m.commitPage(7, 20); // the page comes back: premature
    EXPECT_EQ(m.prematureEvictions(), 1u);
    EXPECT_DOUBLE_EQ(m.prematureEvictionRate(), 1.0);
}

TEST(GpuMemoryManager, LifetimeRecordedOnEviction)
{
    UvmConfig config;
    GpuMemoryManager m(config, 1);
    m.reserveFrame();
    m.commitPage(7, 100);
    PageNum victim;
    m.beginEviction(&victim, 350);
    EXPECT_EQ(m.lifetimeTracker().lifetimes().count(), 1u);
    EXPECT_DOUBLE_EQ(m.lifetimeTracker().lifetimes().mean(), 250.0);
}

TEST(GpuMemoryManager, UnlimitedNeverAtCapacity)
{
    UvmConfig config;
    GpuMemoryManager m(config, 0);
    for (PageNum p = 0; p < 1000; ++p) {
        EXPECT_TRUE(m.hasFreeFrame());
        m.reserveFrame();
        m.commitPage(p, 0);
    }
    EXPECT_FALSE(m.atCapacity());
}

TEST(GpuMemoryManager, RootChunkEvictionGroupsPages)
{
    UvmConfig config;
    config.root_chunk_pages = 4;
    GpuMemoryManager m(config, 8);
    // Pages 0..3 share chunk 0; 4..7 share chunk 1.
    for (PageNum p = 0; p < 8; ++p) {
        m.reserveFrame();
        m.commitPage(p, p);
    }
    PageNum v1, v2;
    m.beginEviction(&v1, 100);
    m.beginEviction(&v2, 100);
    // Both victims come from the oldest chunk.
    EXPECT_LT(v1, 4u);
    EXPECT_LT(v2, 4u);
}

TEST(LifetimeTracker, ThrottleOnCollapse)
{
    LifetimeTracker t(1000, 0.2);
    for (int i = 0; i < 10; ++i)
        t.addLifetime(1000);
    EXPECT_EQ(t.update(1000), OversubAdvice::Grow);
    for (int i = 0; i < 10; ++i)
        t.addLifetime(100); // 10x drop
    EXPECT_EQ(t.update(2000), OversubAdvice::Throttle);
    EXPECT_EQ(t.throttleSignals(), 1u);
}

TEST(LifetimeTracker, StableLifetimesGrow)
{
    LifetimeTracker t(1000, 0.2);
    for (int w = 0; w < 3; ++w) {
        for (int i = 0; i < 5; ++i)
            t.addLifetime(500);
        EXPECT_EQ(t.update((w + 1) * 1000), OversubAdvice::Grow);
    }
    EXPECT_EQ(t.growSignals(), 3u);
}

TEST(LifetimeTracker, EmptyWindowNoSignal)
{
    LifetimeTracker t(1000, 0.2);
    EXPECT_EQ(t.update(5000), OversubAdvice::NoChange);
}

TEST(LifetimeTracker, SmallDropWithinThresholdGrows)
{
    LifetimeTracker t(1000, 0.2);
    for (int i = 0; i < 5; ++i)
        t.addLifetime(1000);
    t.update(1000);
    for (int i = 0; i < 5; ++i)
        t.addLifetime(900); // only a 10% drop
    EXPECT_EQ(t.update(2000), OversubAdvice::Grow);
}

TEST(LifetimeTracker, SingleSampleWindowCarriesSignal)
{
    // One eviction is enough to close a window with an average: the
    // very first window has no history to compare against, so it can
    // only grow.
    LifetimeTracker t(1000, 0.2);
    t.addLifetime(700);
    EXPECT_EQ(t.update(1000), OversubAdvice::Grow);
    EXPECT_DOUBLE_EQ(t.runningAverage(), 700.0);

    // A later single-sample window collapsing past the threshold
    // throttles just like a populated one.
    t.addLifetime(70);
    EXPECT_EQ(t.update(2000), OversubAdvice::Throttle);
}

TEST(LifetimeTracker, MonotoneDecreaseKeepsThrottling)
{
    // Lifetimes collapsing by >20% window over window must emit a
    // throttle every window, not just once: the running average decays
    // slower than the per-window average, so each new window stays
    // below the (1 - threshold) bar.
    LifetimeTracker t(1000, 0.2);
    Cycle life = 10000;
    for (int i = 0; i < 4; ++i)
        t.addLifetime(life);
    EXPECT_EQ(t.update(1000), OversubAdvice::Grow);

    for (int w = 1; w <= 3; ++w) {
        life /= 2; // 50% drop each window, far past the 20% threshold
        for (int i = 0; i < 4; ++i)
            t.addLifetime(life);
        EXPECT_EQ(t.update((w + 1) * 1000), OversubAdvice::Throttle)
            << "window " << w;
    }
    EXPECT_EQ(t.throttleSignals(), 3u);
    EXPECT_EQ(t.growSignals(), 1u);
}

TEST(LifetimeTracker, RunningAverageIsMeanOfClosedWindowAverages)
{
    LifetimeTracker t(1000, 0.2);
    t.addLifetime(100);
    t.addLifetime(300); // window 1 average: 200
    t.update(1000);
    t.addLifetime(600); // window 2 average: 600
    t.update(2000);
    EXPECT_DOUBLE_EQ(t.runningAverage(), 400.0);
}

TEST(LifetimeTracker, GapWindowsWithNoEvictionsCarryNoSignal)
{
    // The clock jumping several windows ahead with an empty window
    // buffer must not divide by zero or fabricate advice.
    LifetimeTracker t(1000, 0.2);
    for (int i = 0; i < 3; ++i)
        t.addLifetime(500);
    EXPECT_EQ(t.update(1000), OversubAdvice::Grow);
    EXPECT_EQ(t.update(9000), OversubAdvice::NoChange);
    EXPECT_DOUBLE_EQ(t.runningAverage(), 500.0);
}

TEST(CompressionModel, DisabledIsIdentity)
{
    CompressionModel c(1.0);
    EXPECT_FALSE(c.enabled());
    EXPECT_EQ(c.compressedBytes(5, 1000), 1000u);
    EXPECT_DOUBLE_EQ(c.ratioFor(5), 1.0);
}

TEST(CompressionModel, RatiosAreDeterministicAndNearMean)
{
    CompressionModel c(2.0, 0.25);
    double sum = 0.0;
    for (PageNum p = 0; p < 1000; ++p) {
        const double r = c.ratioFor(p);
        EXPECT_EQ(r, c.ratioFor(p)); // deterministic
        EXPECT_GE(r, 1.0);
        EXPECT_LE(r, 2.0 * 1.25 + 1e-9);
        sum += r;
    }
    EXPECT_NEAR(sum / 1000.0, 2.0, 0.1);
}

TEST(CompressionModel, CompressedBytesShrink)
{
    CompressionModel c(2.0);
    EXPECT_LT(c.compressedBytes(3, 64 * 1024), 64u * 1024);
    EXPECT_GE(c.compressedBytes(3, 64 * 1024), 1u);
}

class PrefetcherTest : public ::testing::Test
{
  protected:
    PrefetcherTest()
        : prefetcher_(
              config_,
              [this](PageNum p) { return resident_.count(p) > 0; },
              [this](PageNum p) { return p < valid_limit_; })
    {
    }

    UvmConfig config_; // 64KB pages, 2MB blocks: 32 pages per block
    std::set<PageNum> resident_;
    PageNum valid_limit_ = 1000000;
    TreePrefetcher prefetcher_;
};

TEST_F(PrefetcherTest, NoPrefetchBelowDensity)
{
    // 1 fault in an empty 32-page block: every subtree is <= 50%.
    const auto p = prefetcher_.computePrefetches({0});
    EXPECT_TRUE(p.empty());
}

TEST_F(PrefetcherTest, PairCompletionAtLeafLevel)
{
    // Faulting page 0 with page 1 resident: the 2-page subtree is 50%
    // -> not strictly above threshold. Fault both halves of a 2-pair:
    // {0,1} full; {2} faulted with 3 absent: subtree {2,3} at 50% stays.
    // Use 3 pages of a 4-page subtree: density 75% > 50% -> fetch the
    // 4th.
    const auto p = prefetcher_.computePrefetches({0, 1, 2});
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0], 3u);
}

TEST_F(PrefetcherTest, ResidentPagesCountTowardDensity)
{
    resident_ = {0, 1};
    const auto p = prefetcher_.computePrefetches({2});
    // {0,1,2} of the first 4-page subtree occupied: fetch page 3.
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0], 3u);
}

TEST_F(PrefetcherTest, CascadesUpTheTree)
{
    // Occupy >50% of the whole 32-page block: the root subtree fills.
    std::vector<PageNum> faults;
    for (PageNum p = 0; p < 17; ++p)
        faults.push_back(p);
    const auto p = prefetcher_.computePrefetches(faults);
    EXPECT_EQ(p.size(), 15u); // the remaining pages of the block
}

TEST_F(PrefetcherTest, NeverPrefetchesInvalidPages)
{
    valid_limit_ = 3; // pages >= 3 are outside any allocation
    const auto p = prefetcher_.computePrefetches({0, 1, 2});
    EXPECT_TRUE(p.empty());
}

TEST_F(PrefetcherTest, BlocksAreIndependent)
{
    // Faults dense in block 0 must not prefetch into block 1.
    std::vector<PageNum> faults;
    for (PageNum p = 0; p < 17; ++p)
        faults.push_back(p);
    const auto p = prefetcher_.computePrefetches(faults);
    for (PageNum pf : p)
        EXPECT_LT(pf, 32u);
}

TEST_F(PrefetcherTest, SequentialPolicyFetchesNextPages)
{
    UvmConfig config;
    config.sequential_prefetch_pages = 2;
    TreePrefetcher seq(
        config, [this](PageNum p) { return resident_.count(p) > 0; },
        [this](PageNum p) { return p < valid_limit_; });
    const auto p = seq.computePrefetches({10});
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 11u);
    EXPECT_EQ(p[1], 12u);
}

TEST_F(PrefetcherTest, SequentialPolicySkipsResidentAndInvalid)
{
    UvmConfig config;
    config.sequential_prefetch_pages = 3;
    resident_ = {11};
    valid_limit_ = 13; // pages >= 13 invalid
    TreePrefetcher seq(
        config, [this](PageNum p) { return resident_.count(p) > 0; },
        [this](PageNum p) { return p < valid_limit_; });
    const auto p = seq.computePrefetches({10});
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0], 12u);
}

TEST_F(PrefetcherTest, SequentialPolicyDeduplicatesOverlaps)
{
    UvmConfig config;
    config.sequential_prefetch_pages = 2;
    TreePrefetcher seq(
        config, [this](PageNum p) { return resident_.count(p) > 0; },
        [this](PageNum p) { return p < valid_limit_; });
    // 10 and 11 both want page 12.
    const auto p = seq.computePrefetches({10, 11});
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0], 12u);
    EXPECT_EQ(p[1], 13u);
}

TEST_F(PrefetcherTest, OutputSortedAndDisjointFromFaults)
{
    std::vector<PageNum> faults = {0, 1, 2, 8, 9, 10};
    const auto p = prefetcher_.computePrefetches(faults);
    for (std::size_t i = 1; i < p.size(); ++i)
        EXPECT_LT(p[i - 1], p[i]);
    for (PageNum pf : p) {
        for (PageNum f : faults)
            EXPECT_NE(pf, f);
    }
}

} // namespace
} // namespace bauvm
