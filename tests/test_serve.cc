/**
 * @file
 * Tests for the sweep service subsystem (src/serve): the JSON parser,
 * the result aggregator, content addressing, the on-disk result
 * cache, request parsing/expansion, and the daemon itself — sharding,
 * caching, cross-request dedupe, hard timeouts, and kill-and-resume
 * equivalence against the serial in-process reference.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/core/presets.h"
#include "src/graph/stream/csr_stream_builder.h"
#include "src/runner/cell_spec.h"
#include "src/runner/job.h"
#include "src/runner/sweep_result.h"
#include "src/serve/aggregator.h"
#include "src/serve/cell_json.h"
#include "src/serve/client.h"
#include "src/serve/json.h"
#include "src/serve/result_cache.h"
#include "src/serve/sweep_request.h"
#include "src/serve/sweep_service.h"

namespace bauvm
{
namespace
{

JsonValue
parseOrDie(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, &v, &error)) << error;
    return v;
}

/**
 * Canonical re-serialization of a parsed JSON tree with the
 * execution-provenance members removed (the fields that legitimately
 * differ between a serial run, a sharded daemon run, and a cache
 * replay — the C++ twin of ci/check_sweep_equiv.py's strip set).
 * Member order is preserved, so two documents produced by the same
 * writer compare equal iff their deterministic content matches.
 */
void
canonStripped(const JsonValue &v, std::string *out)
{
    static const std::vector<std::string> kProvenance = {
        "wall_s",     "host_wall_s", "events_per_sec", "elapsed_s",
        "jobs",       "worker_pid",  "hostname",       "cached",
    };
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        *out += "null";
        return;
      case JsonValue::Kind::Bool:
        *out += v.asBool() ? "true" : "false";
        return;
      case JsonValue::Kind::Number: {
        const double d = v.asDouble();
        if (std::floor(d) == d && d >= 0.0 && d <= 1.8e19) {
            // Plain unsigned tokens (seeds, counters) round-trip
            // exactly through asU64 even above 2^53.
            char buf[32];
            std::snprintf(buf, sizeof buf, "%llu",
                          static_cast<unsigned long long>(v.asU64()));
            *out += buf;
        } else {
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.17g", d);
            *out += buf;
        }
        return;
      }
      case JsonValue::Kind::String:
        *out += '"';
        *out += v.asString();
        *out += '"';
        return;
      case JsonValue::Kind::Array:
        *out += '[';
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i)
                *out += ',';
            canonStripped(v.at(i), out);
        }
        *out += ']';
        return;
      case JsonValue::Kind::Object:
        *out += '{';
        bool first = true;
        for (const auto &m : v.members()) {
            bool skip = false;
            for (const auto &p : kProvenance)
                skip = skip || m.first == p;
            if (skip)
                continue;
            if (!first)
                *out += ',';
            first = false;
            *out += '"';
            *out += m.first;
            *out += "\":";
            canonStripped(m.second, out);
        }
        *out += '}';
        return;
    }
}

std::string
strippedDoc(const std::string &json_text)
{
    std::string canon;
    canonStripped(parseOrDie(json_text), &canon);
    return canon;
}

std::size_t
cacheEntryCount(const std::string &dir)
{
    std::size_t n = 0;
    std::error_code ec;
    for (std::filesystem::recursive_directory_iterator
             it(dir, ec), end; it != end; it.increment(ec)) {
        if (ec)
            break;
        if (it->is_regular_file() &&
            it->path().extension() == ".json")
            ++n;
    }
    return n;
}

std::string
requestJson(const std::string &extra = "")
{
    // No explicit "seed": the parser defaults it to 1, and callers
    // can pass "seed": N via @p extra without creating a duplicate
    // member.
    return "{\"schema\": \"bauvm.sweep-request/1\","
           " \"bench\": \"serve_test\","
           " \"workloads\": [\"BFS-TWC\", \"PR\"],"
           " \"policies\": [\"BASELINE\", \"TO+UE\"],"
           " \"scale\": \"tiny\", \"ratio\": 0.5" +
           (extra.empty() ? "" : ", " + extra) + "}";
}

/** An in-process daemon on its own thread, stopped on scope exit. */
class ServiceFixture
{
  public:
    explicit ServiceFixture(SweepServiceOptions opt)
        : service_(std::move(opt))
    {
        std::string error;
        if (!service_.start(&error)) {
            ADD_FAILURE() << "service start failed: " << error;
            return;
        }
        started_ = true;
        thread_ = std::thread([this] { service_.run(); });
        EXPECT_TRUE(waitForService(service_.socketPath(), 10.0));
    }

    ~ServiceFixture()
    {
        if (started_) {
            service_.stop();
            thread_.join();
        }
    }

    SweepService &service() { return service_; }
    const std::string &socket() { return service_.socketPath(); }

  private:
    SweepService service_;
    std::thread thread_;
    bool started_ = false;
};

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

// ---------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------

TEST(JsonParse, ScalarsStringsAndNesting)
{
    const JsonValue v = parseOrDie(
        "{\"s\": \"a\\\"b\\\\c\\nd\", \"b\": true, \"n\": null,"
        " \"d\": -1.5, \"arr\": [1, \"x\", {\"k\": 2}]}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.getString("s"), "a\"b\\c\nd");
    EXPECT_TRUE(v.getBool("b"));
    ASSERT_NE(v.find("n"), nullptr);
    EXPECT_TRUE(v.find("n")->isNull());
    EXPECT_DOUBLE_EQ(v.getDouble("d"), -1.5);

    const JsonValue *arr = v.find("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_EQ(arr->size(), 3u);
    EXPECT_EQ(arr->at(0).asU64(), 1u);
    EXPECT_EQ(arr->at(1).asString(), "x");
    EXPECT_EQ(arr->at(2).getU64("k"), 2u);
}

TEST(JsonParse, U64KeepsFullPrecision)
{
    // 2^64 - 1 is not representable as a double; the raw token must
    // survive. Seeds and cycle counters rely on this.
    const JsonValue v =
        parseOrDie("{\"seed\": 18446744073709551615}");
    EXPECT_EQ(v.getU64("seed"), 18446744073709551615ull);

    const JsonValue big = parseOrDie("{\"c\": 9007199254740993}");
    EXPECT_EQ(big.getU64("c"), 9007199254740993ull); // 2^53 + 1
}

TEST(JsonParse, ReportsErrors)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(JsonValue::parse("{\"a\": }", &v, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(JsonValue::parse("{} trailing", &v, &error));
    EXPECT_FALSE(JsonValue::parse("", &v, &error));
    EXPECT_TRUE(JsonValue::parse("{}  \n", &v, &error)) << error;
}

// ---------------------------------------------------------------------
// Result aggregator
// ---------------------------------------------------------------------

TEST(ResultAggregatorTest, FlushesAtCapacityAndOnScopeExit)
{
    std::vector<std::vector<std::string>> batches;
    {
        ResultAggregator agg(
            [&](const std::vector<std::string> &items) {
                batches.push_back(items);
            },
            3);
        EXPECT_EQ(agg.capacity(), 3u);
        for (int i = 0; i < 7; ++i)
            agg.add(std::to_string(i));
        EXPECT_EQ(batches.size(), 2u); // 3 + 3 shipped, 1 pending
        EXPECT_EQ(agg.pending(), 1u);
        EXPECT_EQ(agg.flushes(), 2u);
        agg.flush();
        agg.flush(); // empty: must not ship a zero-item batch
        EXPECT_EQ(batches.size(), 3u);
        agg.add("tail");
    } // destructor is the barrier
    ASSERT_EQ(batches.size(), 4u);
    EXPECT_EQ(batches[0],
              (std::vector<std::string>{"0", "1", "2"}));
    EXPECT_EQ(batches[2], (std::vector<std::string>{"6"}));
    EXPECT_EQ(batches[3], (std::vector<std::string>{"tail"}));
}

// ---------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------

TEST(CellDigest, StableUniqueAndInvalidating)
{
    CellSpec spec;
    spec.workload = "BFS-TWC";
    spec.policy = Policy::Baseline;
    spec.scale = WorkloadScale::Tiny;

    const std::string key =
        cellKey(spec.workload, spec.scale, cellConfig(spec), "rev1");
    const std::string digest = digestHex(key);
    EXPECT_EQ(digest.size(), 32u);
    EXPECT_EQ(digest, digestHex(key)); // pure function

    // Every coordinate that changes simulated behaviour must change
    // the address: policy, any config knob, the seed, the code rev.
    CellSpec to = spec;
    to.policy = Policy::ToUe;
    EXPECT_NE(digestHex(cellKey(to.workload, to.scale, cellConfig(to),
                                "rev1")),
              digest);

    CellSpec knob = spec;
    knob.overrides.push_back({"uvm.fault_buffer_entries", 1000.0});
    EXPECT_NE(digestHex(cellKey(knob.workload, knob.scale,
                                cellConfig(knob), "rev1")),
              digest);

    CellSpec seeded = spec;
    seeded.base_seed = 2;
    EXPECT_NE(digestHex(cellKey(seeded.workload, seeded.scale,
                                cellConfig(seeded), "rev1")),
              digest);

    EXPECT_NE(digestHex(cellKey(spec.workload, spec.scale,
                                cellConfig(spec), "rev2")),
              digest);
}

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

CellOutcome
fakeOutcome(const std::string &workload, std::uint64_t cycles)
{
    CellOutcome out;
    out.workload = workload;
    out.policy = Policy::Baseline;
    out.seed = 7;
    out.job_seed = 8;
    out.ok = true;
    out.digest = "unused-by-store";
    out.result.workload = workload;
    out.result.seed = 7;
    out.result.cycles = cycles;
    out.result.batches = 3;
    return out;
}

TEST(ResultCacheTest, StoreThenLookupHits)
{
    const std::string dir = tempPath("rc_hit");
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    const std::string key = "bauvm.cell/1|rev|W|tiny|cfg";
    const std::string digest = digestHex(key);
    EXPECT_FALSE(cache.contains(digest));

    CellOutcome miss;
    EXPECT_FALSE(cache.lookup(digest, key, &miss));
    EXPECT_EQ(cache.misses(), 1u);

    ASSERT_TRUE(cache.store(digest, key, fakeOutcome("W", 12345)));
    EXPECT_EQ(cache.stores(), 1u);
    EXPECT_TRUE(cache.contains(digest));

    CellOutcome hit;
    ASSERT_TRUE(cache.lookup(digest, key, &hit));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_TRUE(hit.ok);
    EXPECT_TRUE(hit.from_cache);
    EXPECT_EQ(hit.workload, "W");
    EXPECT_EQ(hit.result.cycles, 12345u);
    EXPECT_EQ(hit.result.batches, 3u);
}

TEST(ResultCacheTest, BatchRecordsSurviveRoundTrip)
{
    // Figs 3/12-16 replay from cached cells, so the per-batch records
    // must survive the store/lookup round-trip exactly — a resumed
    // run must not differ from a fresh one.
    const std::string dir = tempPath("rc_batchrec");
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    CellOutcome out = fakeOutcome("W", 42);
    BatchRecord a;
    a.begin = 100;
    a.first_transfer = 110;
    a.end = 150;
    a.fault_pages = 7;
    a.prefetch_pages = 3;
    a.duplicate_faults = 1;
    a.migrated_bytes = 65536;
    BatchRecord b;
    b.begin = 200;
    b.first_transfer = 205;
    b.end = 260;
    b.fault_pages = 9;
    b.migrated_bytes = 4096;
    out.result.batch_records = {a, b};

    const std::string key = "bauvm.cell/1|rev|W|tiny|cfg-br";
    const std::string digest = digestHex(key);
    ASSERT_TRUE(cache.store(digest, key, out));

    CellOutcome hit;
    ASSERT_TRUE(cache.lookup(digest, key, &hit));
    ASSERT_EQ(hit.result.batch_records.size(), 2u);
    const BatchRecord &ra = hit.result.batch_records[0];
    EXPECT_EQ(ra.begin, a.begin);
    EXPECT_EQ(ra.first_transfer, a.first_transfer);
    EXPECT_EQ(ra.end, a.end);
    EXPECT_EQ(ra.fault_pages, a.fault_pages);
    EXPECT_EQ(ra.prefetch_pages, a.prefetch_pages);
    EXPECT_EQ(ra.duplicate_faults, a.duplicate_faults);
    EXPECT_EQ(ra.migrated_bytes, a.migrated_bytes);
    const BatchRecord &rb = hit.result.batch_records[1];
    EXPECT_EQ(rb.begin, b.begin);
    EXPECT_EQ(rb.end, b.end);
    EXPECT_EQ(rb.fault_pages, b.fault_pages);
    EXPECT_EQ(rb.migrated_bytes, b.migrated_bytes);
}

TEST(ResultCacheTest, KeyMismatchReadsAsMiss)
{
    // A digest collision (or a corrupted entry) must never serve a
    // wrong result: the stored full key is verified on lookup.
    const std::string dir = tempPath("rc_keycheck");
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    const std::string key = "bauvm.cell/1|rev|W|tiny|cfgA";
    const std::string digest = digestHex(key);
    ASSERT_TRUE(cache.store(digest, key, fakeOutcome("W", 1)));

    CellOutcome out;
    EXPECT_FALSE(
        cache.lookup(digest, "bauvm.cell/1|rev|W|tiny|cfgB", &out));
    EXPECT_TRUE(cache.lookup(digest, key, &out));
}

TEST(ResultCacheTest, NeverStoresFailures)
{
    const std::string dir = tempPath("rc_fail");
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    CellOutcome failed = fakeOutcome("W", 1);
    failed.ok = false;
    failed.error = "boom";
    EXPECT_FALSE(cache.store("d1", "k1", failed));

    CellOutcome timed = fakeOutcome("W", 1);
    timed.timed_out = true;
    EXPECT_FALSE(cache.store("d2", "k2", timed));
    EXPECT_EQ(cacheEntryCount(dir), 0u);
}

// ---------------------------------------------------------------------
// Sweep requests
// ---------------------------------------------------------------------

TEST(SweepRequestParse, FullDocumentRoundTrips)
{
    const JsonValue doc = parseOrDie(requestJson(
        "\"variants\": [{\"label\": \"\"},"
        " {\"label\": \"big-buf\", \"overrides\":"
        "  [{\"key\": \"uvm.fault_buffer_entries\","
        "    \"value\": 2000}]}],"
        " \"jobs\": 3, \"chunk_cells\": 2, \"flush_cells\": 4,"
        " \"hard_timeout_s\": 9.5"));
    SweepRequest req;
    std::string error;
    ASSERT_TRUE(parseSweepRequest(doc, &req, &error)) << error;
    EXPECT_EQ(req.bench, "serve_test");
    EXPECT_EQ(req.workloads,
              (std::vector<std::string>{"BFS-TWC", "PR"}));
    ASSERT_EQ(req.policies.size(), 2u);
    EXPECT_EQ(req.policies[0], Policy::Baseline);
    EXPECT_EQ(req.policies[1], Policy::ToUe);
    ASSERT_EQ(req.variants.size(), 2u);
    EXPECT_EQ(req.variants[1].label, "big-buf");
    ASSERT_EQ(req.variants[1].overrides.size(), 1u);
    EXPECT_EQ(req.variants[1].overrides[0].key,
              "uvm.fault_buffer_entries");
    EXPECT_EQ(req.scale, WorkloadScale::Tiny);
    EXPECT_EQ(req.jobs, 3u);
    EXPECT_EQ(req.chunk_cells, 2u);
    EXPECT_EQ(req.flush_cells, 4u);
    EXPECT_DOUBLE_EQ(req.hard_timeout_s, 9.5);

    // Expansion: variant-major -> workload -> policy, the SweepRunner
    // order the daemon's merged document must reproduce.
    const std::vector<CellSpec> cells = expandCells(req);
    ASSERT_EQ(cells.size(), 8u);
    EXPECT_EQ(cells[0].workload, "BFS-TWC");
    EXPECT_EQ(cells[0].policy, Policy::Baseline);
    EXPECT_EQ(cells[0].variant, "");
    EXPECT_EQ(cells[1].policy, Policy::ToUe);
    EXPECT_EQ(cells[2].workload, "PR");
    EXPECT_EQ(cells[4].variant, "big-buf");
    EXPECT_EQ(cells[4].workload, "BFS-TWC");
}

TEST(SweepRequestParse, DefaultsAndGroupExpansion)
{
    const JsonValue doc = parseOrDie(
        "{\"schema\": \"bauvm.sweep-request/1\","
        " \"workloads\": [\"@irregular\"], \"scale\": \"tiny\"}");
    SweepRequest req;
    std::string error;
    ASSERT_TRUE(parseSweepRequest(doc, &req, &error)) << error;
    EXPECT_GE(req.workloads.size(), 2u);
    EXPECT_EQ(req.policies.size(), allPolicies().size());
    ASSERT_EQ(req.variants.size(), 1u);
    EXPECT_EQ(req.variants[0].label, "");
    EXPECT_EQ(req.jobs, 1u);
}

TEST(SweepRequestParse, FrontierGroupExpandsToTheFamily)
{
    const JsonValue doc = parseOrDie(
        "{\"schema\": \"bauvm.sweep-request/1\","
        " \"workloads\": [\"@frontier\"], \"scale\": \"tiny\"}");
    SweepRequest req;
    std::string error;
    ASSERT_TRUE(parseSweepRequest(doc, &req, &error)) << error;
    const std::vector<std::string> expected = {"BFS-HYB", "CC", "TC",
                                               "KTRUSS"};
    EXPECT_EQ(req.workloads, expected);
}

TEST(CellKeyStreamParams, StreamConfigReKeysTheCell)
{
    // The graph-stream policy lives outside SimConfig, so cellKey()
    // carries it in its own lane: changing any stream parameter must
    // change the content address (cache miss), and restoring it must
    // restore the address (cache replay).
    const SimConfig config = paperConfig(0.5, 1);
    const GraphStreamConfig saved = graphStreamConfig();
    const std::string base =
        cellKey("BFS-HYB", WorkloadScale::Tiny, config, "rev");

    graphStreamConfig().stream_threshold_edges = 1;
    const std::string threshold =
        cellKey("BFS-HYB", WorkloadScale::Tiny, config, "rev");
    EXPECT_NE(threshold, base);

    graphStreamConfig() = saved;
    graphStreamConfig().edges_per_block /= 2;
    const std::string block =
        cellKey("BFS-HYB", WorkloadScale::Tiny, config, "rev");
    EXPECT_NE(block, base);
    EXPECT_NE(block, threshold);

    graphStreamConfig() = saved;
    EXPECT_EQ(cellKey("BFS-HYB", WorkloadScale::Tiny, config, "rev"),
              base);
    EXPECT_EQ(digestHex(base).size(), 32u);
}

TEST(SweepRequestParse, RejectsInvalidDocuments)
{
    SweepRequest req;
    std::string error;
    EXPECT_FALSE(parseSweepRequest(
        parseOrDie("{\"schema\": \"bauvm.other/1\","
                   " \"workloads\": [\"PR\"]}"),
        &req, &error));
    EXPECT_FALSE(parseSweepRequest(
        parseOrDie("{\"schema\": \"bauvm.sweep-request/1\","
                   " \"workloads\": [\"NOPE\"]}"),
        &req, &error));
    EXPECT_FALSE(parseSweepRequest(
        parseOrDie("{\"schema\": \"bauvm.sweep-request/1\","
                   " \"workloads\": [\"PR\"],"
                   " \"policies\": [\"NOPE\"]}"),
        &req, &error));
    EXPECT_FALSE(parseSweepRequest(
        parseOrDie("{\"schema\": \"bauvm.sweep-request/1\","
                   " \"workloads\": []}"),
        &req, &error));
}

// ---------------------------------------------------------------------
// The daemon
// ---------------------------------------------------------------------

TEST(SweepServiceTest, ShardedMatchesSerialThenServesFromCache)
{
    const std::string cache_dir = tempPath("svc_cache");
    std::filesystem::remove_all(cache_dir);

    // Serial in-process reference for the same request.
    SweepRequest req;
    std::string error;
    ASSERT_TRUE(parseSweepRequest(parseOrDie(requestJson()), &req,
                                  &error))
        << error;
    const std::string serial =
        runRequestSerial(req).toJson(/*pretty=*/false);

    SweepServiceOptions opt;
    opt.socket_path = tempPath("svc1.sock");
    opt.cache_dir = cache_dir;
    opt.verbose = false;
    ServiceFixture daemon(std::move(opt));

    // Sharded across 2 forked workers: must match serial bit-for-bit
    // on every deterministic field.
    const SweepSubmitResult sharded =
        submitSweep(daemon.socket(), requestJson("\"jobs\": 2"));
    ASSERT_TRUE(sharded.ok) << sharded.error;
    EXPECT_EQ(sharded.cells, 4u);
    EXPECT_EQ(sharded.failed, 0u);
    EXPECT_EQ(sharded.cached, 0u);
    EXPECT_EQ(strippedDoc(sharded.sweep_json), strippedDoc(serial));
    EXPECT_EQ(cacheEntryCount(cache_dir), 4u);

    // Identical resubmission: every cell replays from the daemon's
    // completion memo / the disk cache, still equal to serial.
    const SweepSubmitResult replay =
        submitSweep(daemon.socket(), requestJson("\"jobs\": 2"));
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_EQ(replay.cached, 4u);
    EXPECT_EQ(strippedDoc(replay.sweep_json), strippedDoc(serial));
    EXPECT_EQ(daemon.service().cellsExecuted(), 4u);

    // A config change (different base seed) changes every content
    // address: nothing may come from the cache.
    const SweepSubmitResult reseeded = submitSweep(
        daemon.socket(), requestJson("\"jobs\": 2, \"seed\": 99"));
    ASSERT_TRUE(reseeded.ok) << reseeded.error;
    EXPECT_EQ(reseeded.cached, 0u);
    EXPECT_EQ(daemon.service().cellsExecuted(), 8u);
    EXPECT_EQ(cacheEntryCount(cache_dir), 8u);
}

TEST(SweepServiceTest, ConcurrentIdenticalRequestsDedupe)
{
    const std::string cache_dir = tempPath("svc_dedupe");
    std::filesystem::remove_all(cache_dir);

    SweepServiceOptions opt;
    opt.socket_path = tempPath("svc2.sock");
    opt.cache_dir = cache_dir;
    opt.verbose = false;
    ServiceFixture daemon(std::move(opt));

    // Two clients submit the same 4-cell matrix at once. However the
    // completions interleave, the daemon must run each unique cell
    // exactly once; the second request's cells either wait on the
    // running twin or replay the memo, and both merged documents are
    // identical on deterministic fields.
    SweepSubmitResult a, b;
    std::thread ta([&] {
        a = submitSweep(daemon.socket(), requestJson("\"jobs\": 2"));
    });
    std::thread tb([&] {
        b = submitSweep(daemon.socket(), requestJson("\"jobs\": 2"));
    });
    ta.join();
    tb.join();

    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.cells, 4u);
    EXPECT_EQ(b.cells, 4u);
    EXPECT_EQ(a.failed + b.failed, 0u);
    EXPECT_EQ(strippedDoc(a.sweep_json), strippedDoc(b.sweep_json));

    EXPECT_EQ(daemon.service().cellsExecuted(), 4u);
    EXPECT_EQ(daemon.service().cellsFromCache() +
                  daemon.service().cellsDeduped(),
              4u);
    EXPECT_EQ(cacheEntryCount(cache_dir), 4u);
}

TEST(SweepServiceTest, HardTimeoutKillsWorkerAndCellRetries)
{
    const std::string cache_dir = tempPath("svc_hardto");
    std::filesystem::remove_all(cache_dir);

    SweepServiceOptions opt;
    opt.socket_path = tempPath("svc3.sock");
    opt.cache_dir = cache_dir;
    opt.verbose = false;
    ServiceFixture daemon(std::move(opt));

    // A hard budget far below any tiny cell's runtime: the daemon
    // must SIGKILL the worker, charge exactly the running cell with
    // timed_out, and keep the request alive to completion.
    const SweepSubmitResult killed = submitSweep(
        daemon.socket(),
        "{\"schema\": \"bauvm.sweep-request/1\","
        " \"bench\": \"hardto\", \"workloads\": [\"BFS-TWC\"],"
        " \"policies\": [\"BASELINE\", \"TO+UE\"],"
        " \"scale\": \"tiny\", \"hard_timeout_s\": 0.001}");
    ASSERT_TRUE(killed.ok) << killed.error;
    EXPECT_EQ(killed.cells, 2u);
    EXPECT_GE(killed.timed_out, 1u);
    EXPECT_EQ(killed.failed, killed.timed_out);
    EXPECT_GE(daemon.service().workersKilled(), 1u);

    const JsonValue doc = parseOrDie(killed.sweep_json);
    const JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    std::size_t marked = 0;
    for (std::size_t i = 0; i < cells->size(); ++i) {
        if (cells->at(i).getBool("timed_out")) {
            ++marked;
            EXPECT_FALSE(cells->at(i).getBool("ok"));
        }
    }
    EXPECT_EQ(marked, killed.timed_out);

    // Timed-out cells are never memoized or stored: the same matrix
    // without the budget must recompute and succeed.
    const SweepSubmitResult retried = submitSweep(
        daemon.socket(),
        "{\"schema\": \"bauvm.sweep-request/1\","
        " \"bench\": \"hardto\", \"workloads\": [\"BFS-TWC\"],"
        " \"policies\": [\"BASELINE\", \"TO+UE\"],"
        " \"scale\": \"tiny\"}");
    ASSERT_TRUE(retried.ok) << retried.error;
    EXPECT_EQ(retried.failed, 0u);
    EXPECT_EQ(retried.timed_out, 0u);
}

TEST(SweepServiceTest, KillAndResumeMatchesSerial)
{
    const std::string cache_dir = tempPath("svc_resume");
    const std::string sock = tempPath("svc4.sock");
    std::filesystem::remove_all(cache_dir);

    const std::string request = requestJson(
        "\"jobs\": 1, \"chunk_cells\": 1, \"flush_cells\": 1");

    SweepRequest req;
    std::string error;
    ASSERT_TRUE(parseSweepRequest(parseOrDie(request), &req, &error))
        << error;
    const std::string serial =
        runRequestSerial(req).toJson(/*pretty=*/false);

    // First daemon generation runs in a forked child so it can be
    // SIGKILLed mid-matrix — the crash the checkpoint/resume design
    // exists for. flush_cells=1 makes every completed cell durable
    // before its "cell" event reaches the client.
    const pid_t daemon_pid = fork();
    ASSERT_GE(daemon_pid, 0);
    if (daemon_pid == 0) {
        SweepServiceOptions opt;
        opt.socket_path = sock;
        opt.cache_dir = cache_dir;
        opt.verbose = false;
        SweepService svc(std::move(opt));
        std::string err;
        if (!svc.start(&err))
            _exit(9);
        svc.run();
        _exit(0);
    }
    ASSERT_TRUE(waitForService(sock, 10.0));

    std::atomic<std::uint64_t> seen{0};
    const SweepSubmitResult interrupted = submitSweep(
        sock, request, [&](const JsonValue &event) {
            if (event.getString("op") != "cell")
                return;
            // Two cells durably finished: kill the daemon dead.
            if (++seen == 2)
                ::kill(daemon_pid, SIGKILL);
        });
    int status = 0;
    ASSERT_EQ(::waitpid(daemon_pid, &status, 0), daemon_pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_FALSE(interrupted.ok);
    EXPECT_GE(seen.load(), 2u);

    const std::size_t checkpointed = cacheEntryCount(cache_dir);
    EXPECT_GE(checkpointed, 2u);
    EXPECT_LT(checkpointed, 4u) << "kill landed after the matrix";

    // Second generation on the same cache: the resubmitted sweep must
    // replay every checkpointed cell and match serial bit-for-bit on
    // deterministic fields.
    SweepServiceOptions opt;
    opt.socket_path = sock;
    opt.cache_dir = cache_dir;
    opt.verbose = false;
    ServiceFixture daemon(std::move(opt));

    const SweepSubmitResult resumed = submitSweep(sock, request);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.cells, 4u);
    EXPECT_EQ(resumed.failed, 0u);
    EXPECT_GE(resumed.cached, checkpointed);
    EXPECT_EQ(strippedDoc(resumed.sweep_json), strippedDoc(serial));
    EXPECT_EQ(cacheEntryCount(cache_dir), 4u);
}

} // namespace
} // namespace bauvm
