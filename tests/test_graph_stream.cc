/**
 * @file
 * The streamed graph pipeline: seed-addressable R-MAT block stream,
 * external-memory CSR builder, parameter validation, build-cache
 * keying, and the bounded-RSS guarantee that makes WorkloadScale::Huge
 * viable. The differential tests pin the central contract: a streamed
 * build is bit-identical to the in-core build it replaces.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/generator.h"
#include "src/graph/graph_cache.h"
#include "src/graph/stream/csr_stream_builder.h"
#include "src/graph/stream/rmat_stream.h"
#include "src/sim/log.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_registry.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BAUVM_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define BAUVM_SANITIZED 1
#endif
#endif

namespace bauvm
{
namespace
{

RmatParams
smallParams(std::uint64_t seed = 3, bool weighted = false)
{
    RmatParams p;
    p.num_vertices = 1 << 10;
    p.num_edges = 1 << 13;
    p.weighted = weighted;
    p.seed = seed;
    return p;
}

void
expectGraphsEqual(const CsrGraph &got, const CsrGraph &want)
{
    EXPECT_EQ(got.rowOffsets(), want.rowOffsets());
    EXPECT_EQ(got.colIndices(), want.colIndices());
    EXPECT_EQ(got.weights(), want.weights());
}

/** Restores the process-wide stream policy on scope exit. */
struct ScopedStreamConfig {
    GraphStreamConfig saved = graphStreamConfig();
    ~ScopedStreamConfig() { graphStreamConfig() = saved; }
};

// ---- block stream ---------------------------------------------------

TEST(RmatStream, BlocksAreOrderIndependent)
{
    const StreamedRmatGenerator gen(smallParams(), /*edges_per_block=*/512);
    ASSERT_GT(gen.numBlocks(), 3u);

    // Regenerate out of order, then in order; contents must agree.
    std::vector<RmatStreamBlock> shuffled(gen.numBlocks());
    for (std::uint64_t b = gen.numBlocks(); b-- > 0;)
        gen.block(b, &shuffled[b]);
    for (std::uint64_t b = 0; b < gen.numBlocks(); ++b) {
        RmatStreamBlock ordered;
        gen.block(b, &ordered);
        EXPECT_EQ(ordered.edges, shuffled[b].edges) << "block " << b;
        EXPECT_EQ(ordered.weights, shuffled[b].weights) << "block " << b;
    }
}

TEST(RmatStream, GranularityDoesNotChangeTheStream)
{
    const RmatParams p = smallParams(/*seed=*/9, /*weighted=*/true);
    auto concat = [&](std::uint32_t epb) {
        const StreamedRmatGenerator gen(p, epb);
        RmatStreamBlock all, block;
        for (std::uint64_t b = 0; b < gen.numBlocks(); ++b) {
            gen.block(b, &block);
            all.edges.insert(all.edges.end(), block.edges.begin(),
                             block.edges.end());
            all.weights.insert(all.weights.end(), block.weights.begin(),
                               block.weights.end());
        }
        return all;
    };
    const RmatStreamBlock coarse = concat(1u << 12);
    const RmatStreamBlock fine = concat(1u << 7);
    EXPECT_EQ(coarse.edges, fine.edges);
    EXPECT_EQ(coarse.weights, fine.weights);

    // And the concatenation is exactly what generateRmat() builds from.
    const CsrGraph from_stream = CsrGraph::fromEdges(
        StreamedRmatGenerator(p).numVertices(), fine.edges, fine.weights);
    expectGraphsEqual(from_stream, generateRmat(p));
}

TEST(RmatStream, TailBlockHoldsTheRemainder)
{
    RmatParams p = smallParams();
    p.num_edges = 1000; // 3 blocks of 400: 400 + 400 + 200
    const StreamedRmatGenerator gen(p, 400);
    ASSERT_EQ(gen.numBlocks(), 3u);
    EXPECT_EQ(gen.rawEdgesInBlock(0), 400u);
    EXPECT_EQ(gen.rawEdgesInBlock(1), 400u);
    EXPECT_EQ(gen.rawEdgesInBlock(2), 200u);
}

// ---- parameter validation -------------------------------------------

void
expectRmatFatal(const RmatParams &p, const std::string &needle)
{
    ScopedAbortCapture capture;
    try {
        validateRmatParams(p);
        ADD_FAILURE() << "params must be rejected: " << needle;
    } catch (const SimAbort &e) {
        EXPECT_FALSE(e.isPanic()); // fatal(), not a model panic
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(RmatParamValidation, RejectsNegativeProbability)
{
    RmatParams p = smallParams();
    p.b = -0.1;
    expectRmatFatal(p, "negative partition probability");
}

TEST(RmatParamValidation, RejectsProbabilitiesReachingOne)
{
    RmatParams p = smallParams();
    p.a = 0.5;
    p.b = 0.3;
    p.c = 0.2; // exactly 1: quadrant d would have probability zero
    expectRmatFatal(p, "a + b + c < 1");
    p.c = 0.4; // above 1
    expectRmatFatal(p, "a + b + c < 1");
}

TEST(RmatParamValidation, RejectsZeroEdges)
{
    RmatParams p = smallParams();
    p.num_edges = 0;
    expectRmatFatal(p, "num_edges");
}

TEST(RmatParamValidation, AcceptsBoundaryProbabilities)
{
    RmatParams p = smallParams();
    p.a = 0.5;
    p.b = 0.3;
    p.c = 0.19999; // just under the a + b + c < 1 boundary
    validateRmatParams(p); // must not throw
    const CsrGraph g = generateRmat(p);
    EXPECT_GT(g.numEdges(), 0u);
}

TEST(RmatParamValidation, GenerateRmatRejectsThroughTheSamePath)
{
    RmatParams p = smallParams();
    p.num_edges = 0;
    ScopedAbortCapture capture;
    EXPECT_THROW(generateRmat(p), SimAbort);
}

// ---- streamed CSR builder: differential vs in-core ------------------

TEST(StreamCsrBuilder, MatchesInCoreRelabeledBuild)
{
    for (const std::uint64_t scale_edges :
         {1ull << 13, 1ull << 15, 1ull << 17}) {
        RmatParams p = smallParams(/*seed=*/11);
        p.num_vertices = static_cast<VertexId>(scale_edges >> 3);
        p.num_edges = scale_edges;
        const CsrGraph in_core = relabelByDegree(generateRmat(p));
        expectGraphsEqual(buildCsrStreamed(p), in_core);
    }
}

TEST(StreamCsrBuilder, MatchesInCoreRawBuildWithoutRelabel)
{
    const RmatParams p = smallParams(/*seed=*/13);
    StreamCsrOptions opt;
    opt.relabel_by_degree = false;
    expectGraphsEqual(buildCsrStreamed(p, opt), generateRmat(p));
}

TEST(StreamCsrBuilder, WeightedMatchesInCore)
{
    const RmatParams p = smallParams(/*seed=*/17, /*weighted=*/true);
    const CsrGraph streamed = buildCsrStreamed(p);
    ASSERT_TRUE(streamed.weighted());
    expectGraphsEqual(streamed, relabelByDegree(generateRmat(p)));
}

TEST(StreamCsrBuilder, TinyScratchBudgetIsEquivalent)
{
    const RmatParams p = smallParams(/*seed=*/19);
    StreamCsrOptions tiny;
    tiny.scratch_bytes = 1u << 12; // forces many partition passes
    tiny.edges_per_block = 1u << 8;
    expectGraphsEqual(buildCsrStreamed(p, tiny), buildCsrStreamed(p));
}

// ---- build cache keying ---------------------------------------------

TEST(GraphStreamCache, StreamedBuildsShareOneGraphPerKey)
{
    GraphBuildCache &cache = GraphBuildCache::instance();
    GraphBuildCache::Scope scope;
    const RmatParams p = smallParams(/*seed=*/5);
    GraphBuildCache::Key key;
    key.vertices = p.num_vertices;
    key.edges = p.num_edges;
    key.seed = p.seed;
    key.streamed = true;
    key.edges_per_block = kDefaultEdgesPerBlock;

    const std::uint64_t builds0 = cache.builds();
    const auto build = [&] { return buildCsrStreamed(p); };
    const auto g1 = cache.getOrBuild(key, build);
    const auto g2 = cache.getOrBuild(key, build);
    EXPECT_EQ(g1.get(), g2.get()) << "one shared build per key";
    EXPECT_EQ(cache.builds() - builds0, 1u);

    // Cache transparency: the shared graph is the fresh in-core build.
    expectGraphsEqual(*g1, relabelByDegree(generateRmat(p)));

    // The stream layout is part of the key: a different block size is
    // a distinct entry (same bits, built separately).
    GraphBuildCache::Key key2 = key;
    key2.edges_per_block = 1u << 8;
    const auto g3 = cache.getOrBuild(key2, [&] {
        StreamCsrOptions opt;
        opt.edges_per_block = 1u << 8;
        return buildCsrStreamed(p, opt);
    });
    EXPECT_EQ(cache.builds() - builds0, 2u);
    EXPECT_NE(g3.get(), g1.get());
    expectGraphsEqual(*g3, *g1);
}

// ---- workload build path --------------------------------------------

TEST(GraphStreamWorkloadPath, ThresholdZeroStreamsEveryGraphWorkload)
{
    // Force every graph build through the external-memory path and
    // check the full frontier suite still validates against its host
    // references — end-to-end proof the streamed graph is the graph.
    ScopedStreamConfig guard;
    graphStreamConfig().stream_threshold_edges = 0;
    for (const std::string &name :
         WorkloadRegistry::instance().enumerate(WorkloadKind::Frontier)) {
        auto streamed = WorkloadRegistry::instance().create(name);
        streamed->build(WorkloadScale::Tiny, /*seed=*/1);
        runFunctional(*streamed);
        streamed->validate();

        graphStreamConfig() = guard.saved; // in-core control build
        auto in_core = WorkloadRegistry::instance().create(name);
        in_core->build(WorkloadScale::Tiny, /*seed=*/1);
        EXPECT_EQ(streamed->footprintBytes(), in_core->footprintBytes())
            << name;
        graphStreamConfig().stream_threshold_edges = 0;
    }
}

// ---- bounded-RSS guarantee ------------------------------------------

TEST(StreamCsrBuilderRss, HugeBuildNeverMaterializesTheEdgeList)
{
#ifdef BAUVM_SANITIZED
    GTEST_SKIP() << "sanitizer shadow memory distorts RSS accounting";
#endif
    // WorkloadScale::Huge graph parameters (src/workloads/workload.cc).
    RmatParams p;
    p.num_vertices = 2097152;
    p.num_edges = 20971520;
    p.seed = 1;

    // The in-core path's first allocation alone — the materialized
    // undirected edge list — is 2 * num_edges * 8 bytes. The streamed
    // build of the *whole graph* must stay under that.
    const std::uint64_t edge_list_bytes = 2 * p.num_edges * 8;

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        // Child: build and sanity-check, then report via exit status
        // (no gtest machinery in the child).
        const CsrGraph g = buildCsrStreamed(p);
        const bool ok = g.numVertices() == p.num_vertices &&
                        g.numEdges() > p.num_edges &&
                        g.numEdges() <= 2 * p.num_edges;
        _exit(ok ? 0 : 1);
    }
    int status = 0;
    struct rusage ru = {};
    ASSERT_EQ(wait4(pid, &status, 0, &ru), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child build failed";
    const std::uint64_t maxrss_bytes =
        static_cast<std::uint64_t>(ru.ru_maxrss) * 1024; // KiB on Linux
    EXPECT_LT(maxrss_bytes, edge_list_bytes)
        << "peak RSS " << (maxrss_bytes >> 20) << " MiB reaches the "
        << (edge_list_bytes >> 20) << " MiB edge-list footprint";
}

} // namespace
} // namespace bauvm
