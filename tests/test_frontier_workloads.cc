/**
 * @file
 * Frontier workload family: registry wiring, the host reference
 * algorithms behind TC / KTRUSS / CC on hand-checked graphs, and the
 * direction-optimizing BFS actually exercising both of its phases.
 * (The generic converge-and-validate coverage lives in
 * test_workloads_functional.cc, parameterized over the registry.)
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/graph/csr_graph.h"
#include "src/graph/reference_algorithms.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

/** Undirected graph from one-direction edge pairs. */
CsrGraph
undirected(VertexId n,
           const std::vector<std::pair<VertexId, VertexId>> &edges)
{
    std::vector<std::pair<VertexId, VertexId>> both;
    for (const auto &[u, v] : edges) {
        both.emplace_back(u, v);
        both.emplace_back(v, u);
    }
    return CsrGraph::fromEdges(n, both);
}

/** K4 on {0..3} plus a pendant vertex 4 hanging off vertex 0. */
CsrGraph
k4WithPendant()
{
    return undirected(5, {{0, 1},
                          {0, 2},
                          {0, 3},
                          {1, 2},
                          {1, 3},
                          {2, 3},
                          {0, 4}});
}

/** Like runFunctional() but records each kernel's name. */
std::vector<std::string>
runCollectingKernelNames(Workload &workload)
{
    std::vector<std::string> names;
    KernelInfo kernel;
    while (workload.nextKernel(&kernel)) {
        names.push_back(kernel.name);
        const std::uint32_t warps_per_block = kernel.warpsPerBlock(32);
        for (std::uint32_t b = 0; b < kernel.num_blocks; ++b) {
            std::vector<WarpProgram> warps;
            std::vector<bool> alive(warps_per_block, true);
            warps.reserve(warps_per_block);
            for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                WarpCtx ctx;
                ctx.block_id = b;
                ctx.warp_in_block = w;
                ctx.warp_size = 32;
                ctx.threads_per_block = kernel.threads_per_block;
                ctx.num_blocks = kernel.num_blocks;
                warps.push_back(kernel.make_program(ctx));
            }
            bool progress = true;
            while (progress) {
                progress = false;
                for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                    if (alive[w] && warps[w].advance())
                        progress = true;
                    else
                        alive[w] = false;
                }
            }
        }
    }
    return names;
}

// ---- registry wiring ------------------------------------------------

TEST(FrontierRegistry, FamilyIsRegisteredInOrder)
{
    WorkloadRegistry &reg = WorkloadRegistry::instance();
    const std::vector<std::string> expected = {"BFS-HYB", "CC", "TC",
                                               "KTRUSS"};
    EXPECT_EQ(reg.enumerate(WorkloadKind::Frontier), expected);
    EXPECT_EQ(std::string(kindName(WorkloadKind::Frontier)), "frontier");
    for (const auto &name : expected) {
        ASSERT_TRUE(reg.contains(name));
        EXPECT_EQ(reg.create(name)->name(), name);
    }
}

// ---- reference algorithms -------------------------------------------

TEST(FrontierReference, ForwardAdjacencyOrientsTowardSmallerIds)
{
    const reference::ForwardAdjacency fwd =
        reference::buildForwardAdjacency(k4WithPendant());
    // fwd(v) = sorted unique neighbours with smaller id.
    const std::vector<std::uint64_t> row = {0, 0, 1, 3, 6, 7};
    const std::vector<VertexId> col = {0, 0, 1, 0, 1, 2, 0};
    EXPECT_EQ(fwd.row, row);
    EXPECT_EQ(fwd.col, col);
}

TEST(FrontierReference, TriangleCountsOnK4)
{
    // K4 has 4 triangles; each is counted at its largest vertex:
    // (0,1,2) at 2 and (0,1,3), (0,2,3), (1,2,3) at 3. The pendant
    // vertex closes nothing.
    const auto counts = reference::triangleCounts(k4WithPendant());
    const std::vector<std::uint64_t> expected = {0, 0, 1, 3, 0};
    EXPECT_EQ(counts, expected);
}

TEST(FrontierReference, KtrussPeelsThePendantEdge)
{
    // Every K4 edge closes 2 triangles (support 2 >= k - 2 for k = 4);
    // the pendant edge closes none and is peeled in round one.
    const auto alive =
        reference::ktrussAliveEdges(k4WithPendant(), /*k=*/4);
    const std::vector<std::uint8_t> expected = {1, 1, 1, 1, 1, 1, 0};
    EXPECT_EQ(alive, expected);
}

TEST(FrontierReference, KtrussCascadesToEmptyWhenKTooLarge)
{
    // k = 5 needs support 3; K4 offers 2, so the first removal wave
    // takes the whole clique with it.
    const auto alive =
        reference::ktrussAliveEdges(k4WithPendant(), /*k=*/5);
    for (std::size_t e = 0; e < alive.size(); ++e)
        EXPECT_EQ(alive[e], 0u) << "edge " << e;
}

TEST(FrontierReference, ComponentLabelsAreComponentMinima)
{
    // Path 0-1-2, isolated 3, pair 4-5.
    const CsrGraph g = undirected(6, {{0, 1}, {1, 2}, {4, 5}});
    const auto labels = reference::componentLabels(g);
    const std::vector<std::uint32_t> expected = {0, 0, 0, 3, 4, 4};
    EXPECT_EQ(labels, expected);
}

// ---- direction-optimizing BFS ---------------------------------------

TEST(HybridBfs, RunsBothDirectionsAndValidates)
{
    auto workload = WorkloadRegistry::instance().create("BFS-HYB");
    workload->build(WorkloadScale::Tiny, /*seed=*/1);
    const std::vector<std::string> names =
        runCollectingKernelNames(*workload);
    workload->validate();

    // The R-MAT frontier explodes off the hub (top-down -> bottom-up)
    // and dribbles out through the tail (back to top-down); a run that
    // never switches is a broken heuristic, not a different schedule.
    bool saw_td = false, saw_bu = false;
    for (const auto &n : names) {
        saw_td |= n.find("-td-") != std::string::npos;
        saw_bu |= n.find("-bu-") != std::string::npos;
    }
    EXPECT_TRUE(saw_td) << "no top-down level ran";
    EXPECT_TRUE(saw_bu) << "no bottom-up level ran";
}

TEST(FrontierWorkloads, KernelNamesCarryPhaseAndRound)
{
    auto cc = WorkloadRegistry::instance().create("CC");
    cc->build(WorkloadScale::Tiny, /*seed=*/1);
    const auto cc_names = runCollectingKernelNames(*cc);
    ASSERT_GE(cc_names.size(), 2u) << "CC must take multiple rounds";
    EXPECT_EQ(cc_names[0], "CC-round0");

    auto kt = WorkloadRegistry::instance().create("KTRUSS");
    kt->build(WorkloadScale::Tiny, /*seed=*/1);
    const auto kt_names = runCollectingKernelNames(*kt);
    ASSERT_GE(kt_names.size(), 2u);
    EXPECT_EQ(kt_names[0], "KTRUSS-support-r0");
    EXPECT_EQ(kt_names[1], "KTRUSS-filter-r0");

    auto tc = WorkloadRegistry::instance().create("TC");
    tc->build(WorkloadScale::Tiny, /*seed=*/1);
    const auto tc_names = runCollectingKernelNames(*tc);
    const std::vector<std::string> tc_expected = {"TC-count"};
    EXPECT_EQ(tc_names, tc_expected);
}

} // namespace
} // namespace bauvm
