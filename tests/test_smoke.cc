/**
 * @file
 * End-to-end smoke tests: tiny workloads through the full simulator,
 * with functional validation against the CPU references.
 */

#include <gtest/gtest.h>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/workloads/workload_registry.h"

namespace bauvm
{
namespace
{

TEST(Smoke, BfsTtcBaselineRunsAndValidates)
{
    SimConfig config = paperConfig(/*memory_ratio=*/0.5);
    auto workload = WorkloadRegistry::instance().create("BFS-TTC");
    GpuUvmSystem system(config);
    const RunResult r = system.run(*workload, WorkloadScale::Tiny);
    workload->validate();
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.batches, 0u);
    EXPECT_GT(r.migrations, 0u);
}

TEST(Smoke, BfsTtcUnlimitedMemoryNeverEvicts)
{
    SimConfig config = paperConfig(0.0); // unlimited
    auto workload = WorkloadRegistry::instance().create("BFS-TTC");
    GpuUvmSystem system(config);
    const RunResult r = system.run(*workload, WorkloadScale::Tiny);
    workload->validate();
    EXPECT_EQ(r.evictions, 0u);
}

TEST(Smoke, ToUeFasterThanBaselineOnTinyBfs)
{
    const RunResult base = runWorkload(
        applyPolicy(paperConfig(0.5), Policy::Baseline), "BFS-TTC",
        WorkloadScale::Tiny, /*validate=*/true);
    const RunResult toue = runWorkload(
        applyPolicy(paperConfig(0.5), Policy::ToUe), "BFS-TTC",
        WorkloadScale::Tiny, /*validate=*/true);
    // On a thrashing tiny configuration the combined techniques should
    // not be slower than the baseline.
    EXPECT_LE(toue.cycles, base.cycles * 11 / 10);
}

} // namespace
} // namespace bauvm
