/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/sim/rng.h"

namespace bauvm
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02); // roughly uniform
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng r(7);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(Rng, ValuesSpreadAcrossRange)
{
    Rng r(7);
    std::set<std::uint64_t> buckets;
    for (int i = 0; i < 1000; ++i)
        buckets.insert(r.next() >> 60); // top 4 bits
    EXPECT_EQ(buckets.size(), 16u);
}

} // namespace
} // namespace bauvm
