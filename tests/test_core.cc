/**
 * @file
 * Tests for the core layer: presets, experiment helpers, report tables.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/core/report.h"

namespace bauvm
{
namespace
{

TEST(Presets, PaperConfigMatchesTable1)
{
    const SimConfig c = paperConfig();
    EXPECT_EQ(c.gpu.num_sms, 16u);
    EXPECT_EQ(c.gpu.max_threads_per_sm, 1024u);
    EXPECT_EQ(c.gpu.regfile_bytes_per_sm, 256u * 1024);
    EXPECT_EQ(c.mem.l1.size_bytes, 16u * 1024);
    EXPECT_EQ(c.mem.l2.size_bytes, 2u * 1024 * 1024);
    EXPECT_EQ(c.mem.l1_tlb.entries, 64u);
    EXPECT_EQ(c.mem.l2_tlb.entries, 1024u);
    EXPECT_EQ(c.mem.l2_tlb.associativity, 32u);
    EXPECT_EQ(c.mem.dram_latency, 200u);
    EXPECT_EQ(c.mem.walker_threads, 64u);
    EXPECT_EQ(c.uvm.page_bytes, 64u * 1024);
    EXPECT_EQ(c.uvm.fault_buffer_entries, 1024u);
    EXPECT_DOUBLE_EQ(c.uvm.fault_handling_us, 20.0);
    EXPECT_DOUBLE_EQ(c.uvm.pcie_gbps, 15.75);
    EXPECT_DOUBLE_EQ(c.memory_ratio, 0.5);
}

TEST(Presets, PoliciesToggleTheRightKnobs)
{
    const SimConfig base = paperConfig();
    EXPECT_FALSE(base.to.enabled);
    EXPECT_FALSE(base.uvm.unobtrusive_eviction);

    const SimConfig to = applyPolicy(base, Policy::To);
    EXPECT_TRUE(to.to.enabled);
    EXPECT_FALSE(to.uvm.unobtrusive_eviction);

    const SimConfig ue = applyPolicy(base, Policy::Ue);
    EXPECT_TRUE(ue.uvm.unobtrusive_eviction);
    EXPECT_FALSE(ue.to.enabled);

    const SimConfig toue = applyPolicy(base, Policy::ToUe);
    EXPECT_TRUE(toue.to.enabled);
    EXPECT_TRUE(toue.uvm.unobtrusive_eviction);

    const SimConfig etc = applyPolicy(base, Policy::Etc);
    EXPECT_TRUE(etc.etc.enabled);

    const SimConfig ideal = applyPolicy(base, Policy::IdealEviction);
    EXPECT_TRUE(ideal.uvm.ideal_eviction);

    const SimConfig unlimited = applyPolicy(base, Policy::Unlimited);
    EXPECT_LE(unlimited.memory_ratio, 0.0);

    const SimConfig pciec =
        applyPolicy(base, Policy::BaselinePcieComp);
    EXPECT_GT(pciec.uvm.pcie_compression_ratio, 1.0);
}

TEST(Presets, PolicyNamesRoundTrip)
{
    for (Policy p : allPolicies())
        EXPECT_EQ(policyFromName(policyName(p)), p);
    EXPECT_EQ(policyFromName("UNLIMITED"), Policy::Unlimited);
}

TEST(Experiment, GeomeanOfOnesIsOne)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 1.0, 1.0}), 1.0);
}

TEST(Experiment, GeomeanOfTwoAndHalfIsOne)
{
    EXPECT_NEAR(geomean({2.0, 0.5}), 1.0, 1e-12);
}

TEST(Experiment, GeomeanToleratesBadValues)
{
    // A failed sweep cell yields a 0 or empty speedup; geomean must
    // not abort the bench binary for it.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, -1.0}), 0.0);
}

TEST(Experiment, ParseBenchArgs)
{
    const char *argv[] = {"prog", "--scale", "large", "--csv",
                          "--ratio", "0.25", "--seed", "9", "--jobs",
                          "3", "--json", "out.json", "--timeout", "5"};
    const BenchOptions opt =
        parseBenchArgs(14, const_cast<char **>(argv));
    EXPECT_EQ(opt.scale, WorkloadScale::Large);
    EXPECT_TRUE(opt.csv);
    EXPECT_DOUBLE_EQ(opt.ratio, 0.25);
    EXPECT_EQ(opt.seed, 9u);
    EXPECT_EQ(opt.jobs, 3u);
    EXPECT_EQ(opt.json_path, "out.json");
    EXPECT_DOUBLE_EQ(opt.timeout_s, 5.0);
}

TEST(Experiment, ScaleNamesRoundTrip)
{
    EXPECT_EQ(scaleName(WorkloadScale::Tiny), "tiny");
    EXPECT_EQ(scaleName(WorkloadScale::Small), "small");
    EXPECT_EQ(scaleName(WorkloadScale::Medium), "medium");
    EXPECT_EQ(scaleName(WorkloadScale::Large), "large");
}

TEST(Experiment, DefaultBenchArgs)
{
    const char *argv[] = {"prog"};
    const BenchOptions opt =
        parseBenchArgs(1, const_cast<char **>(argv));
    EXPECT_EQ(opt.scale, WorkloadScale::Small);
    EXPECT_FALSE(opt.csv);
    EXPECT_DOUBLE_EQ(opt.ratio, 0.5);
    EXPECT_EQ(opt.jobs, 0u); // 0 = hardware concurrency
    EXPECT_TRUE(opt.json_path.empty());
    EXPECT_DOUBLE_EQ(opt.timeout_s, 0.0);
}

TEST(Report, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Report, TableAcceptsMatchingRows)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    SUCCEED();
}

} // namespace
} // namespace bauvm
