/**
 * @file
 * SM-level tests: block lifecycle, barrier semantics, fault
 * suspension/resume, activation/deactivation, and listener events.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/gpu/sm.h"
#include "src/mem/memory_hierarchy.h"
#include "src/sim/event_queue.h"
#include "src/uvm/gpu_memory_manager.h"
#include "src/uvm/uvm_runtime.h"

namespace bauvm
{
namespace
{

constexpr std::uint64_t kPage = 64 * 1024;

/** Records listener callbacks. */
struct Recorder : SmListener {
    std::vector<std::uint32_t> stalled, finished, inactive_ready;
    void onBlockStalled(std::uint32_t, std::uint32_t slot) override
    {
        stalled.push_back(slot);
    }
    void onBlockFinished(std::uint32_t, std::uint32_t slot) override
    {
        finished.push_back(slot);
    }
    void onInactiveWarpReady(std::uint32_t, std::uint32_t slot) override
    {
        inactive_ready.push_back(slot);
    }
};

class SmTest : public ::testing::Test
{
  protected:
    SmTest()
        : manager_(UvmConfig{}, /*unlimited=*/0),
          hierarchy_(MemConfig{}, 1, kPage, manager_.pageTable()),
          runtime_(UvmConfig{}, events_, manager_, hierarchy_),
          sm_(0, GpuConfig{}, events_, hierarchy_, runtime_, &recorder_)
    {
        runtime_.registerAllocation(0, 1024 * kPage);
    }

    KernelInfo
    kernel(std::uint32_t blocks, std::uint32_t tpb,
           WarpProgramFactory factory)
    {
        KernelInfo k;
        k.name = "t";
        k.num_blocks = blocks;
        k.threads_per_block = tpb;
        k.regs_per_thread = 16;
        k.make_program = std::move(factory);
        return k;
    }

    EventQueue events_;
    GpuMemoryManager manager_;
    MemoryHierarchy hierarchy_;
    UvmRuntime runtime_;
    Recorder recorder_;
    Sm sm_;
};

WarpProgram
computeOnly(WarpCtx)
{
    co_yield WarpOp::compute(10);
    co_yield WarpOp::compute(5);
}

TEST_F(SmTest, BlockRunsToCompletion)
{
    const KernelInfo k = kernel(1, 64, computeOnly);
    sm_.addBlock(&k, 0, true);
    events_.run();
    ASSERT_EQ(recorder_.finished.size(), 1u);
    EXPECT_TRUE(sm_.blockFinished(recorder_.finished[0]));
    // 2 warps x 2 compute ops issued.
    EXPECT_EQ(sm_.issuedInstructions(), 4u);
}

TEST_F(SmTest, InactiveBlockDoesNotIssue)
{
    const KernelInfo k = kernel(1, 64, computeOnly);
    sm_.addBlock(&k, 0, /*active=*/false);
    events_.run();
    EXPECT_EQ(sm_.issuedInstructions(), 0u);
    EXPECT_TRUE(recorder_.finished.empty());
    EXPECT_EQ(sm_.residentBlocks(), 1u);
}

TEST_F(SmTest, ActivationStartsInactiveBlock)
{
    const KernelInfo k = kernel(1, 64, computeOnly);
    const std::uint32_t slot = sm_.addBlock(&k, 0, false);
    sm_.activateBlock(slot, /*delay=*/100);
    events_.run();
    EXPECT_EQ(recorder_.finished.size(), 1u);
    // Nothing could issue before the restore delay elapsed.
    EXPECT_GE(events_.now(), 100u);
}

TEST_F(SmTest, MemoryOpFaultsAndResumes)
{
    const KernelInfo k = kernel(1, 32, [](WarpCtx) -> WarpProgram {
        co_yield loadOf(VAddr{0x10000});
        co_yield WarpOp::compute(1);
    });
    sm_.addBlock(&k, 0, true);
    events_.run();
    EXPECT_EQ(recorder_.finished.size(), 1u);
    EXPECT_TRUE(manager_.isResident(1)); // page was migrated
    // The single-warp block fully stalled when its only warp faulted.
    EXPECT_FALSE(recorder_.stalled.empty());
}

TEST_F(SmTest, BarrierJoinsAllWarps)
{
    // Warp 0 computes long, warp 1 short; both must meet at the
    // barrier before either proceeds.
    const KernelInfo k = kernel(1, 64, [](WarpCtx ctx) -> WarpProgram {
        co_yield WarpOp::compute(ctx.warp_in_block == 0 ? 500 : 5);
        co_yield WarpOp::sync();
        co_yield WarpOp::compute(1);
    });
    sm_.addBlock(&k, 0, true);
    events_.run();
    EXPECT_EQ(recorder_.finished.size(), 1u);
    // Completion must be after the slow warp's 500 cycles.
    EXPECT_GT(events_.now(), 500u);
}

TEST_F(SmTest, FinishedWarpReleasesBarrier)
{
    // Warp 1 exits immediately; warp 0's barrier must not deadlock.
    const KernelInfo k = kernel(1, 64, [](WarpCtx ctx) -> WarpProgram {
        if (ctx.warp_in_block == 1)
            co_return;
        co_yield WarpOp::sync();
        co_yield WarpOp::compute(1);
    });
    sm_.addBlock(&k, 0, true);
    events_.run();
    EXPECT_EQ(recorder_.finished.size(), 1u);
}

TEST_F(SmTest, DeactivatedBlockParksReadyWarps)
{
    const KernelInfo k = kernel(1, 32, [](WarpCtx) -> WarpProgram {
        for (int i = 0; i < 100; ++i)
            co_yield WarpOp::compute(10);
    });
    const std::uint32_t slot = sm_.addBlock(&k, 0, true);
    // Let it run briefly, then deactivate mid-flight.
    events_.run(/*until=*/50);
    sm_.deactivateBlock(slot);
    events_.run();
    EXPECT_TRUE(recorder_.finished.empty());
    EXPECT_FALSE(sm_.blockFinished(slot));
    // Reactivate: it finishes.
    sm_.activateBlock(slot, 0);
    events_.run();
    EXPECT_EQ(recorder_.finished.size(), 1u);
}

TEST_F(SmTest, SlotReuseAfterFinish)
{
    const KernelInfo k = kernel(2, 32, computeOnly);
    const std::uint32_t s0 = sm_.addBlock(&k, 0, true);
    events_.run();
    const std::uint32_t s1 = sm_.addBlock(&k, 1, true);
    EXPECT_EQ(s0, s1); // retired slot recycled
    events_.run();
    EXPECT_EQ(recorder_.finished.size(), 2u);
}

TEST_F(SmTest, IssuePortSerializesSameCycleWarps)
{
    // 8 warps all ready at cycle 0: with a 1-wide issue port their
    // first ops issue on consecutive cycles, so the last compute(1)
    // finishes at >= 8 cycles.
    const KernelInfo k = kernel(1, 256, [](WarpCtx) -> WarpProgram {
        co_yield WarpOp::compute(1);
    });
    sm_.addBlock(&k, 0, true);
    events_.run();
    EXPECT_GE(events_.now(), 8u);
    EXPECT_EQ(sm_.issuedInstructions(), 8u);
}

TEST_F(SmTest, SwitchInCandidateTracksRunnability)
{
    const KernelInfo k = kernel(1, 32, computeOnly);
    const std::uint32_t slot = sm_.addBlock(&k, 0, false);
    EXPECT_TRUE(sm_.switchInCandidate(slot)); // fresh block is runnable
    sm_.activateBlock(slot, 0);
    EXPECT_FALSE(sm_.switchInCandidate(slot)); // activating
    events_.run();
    EXPECT_FALSE(sm_.switchInCandidate(slot)); // finished
}

} // namespace
} // namespace bauvm
