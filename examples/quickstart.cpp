/**
 * @file
 * Quickstart: run one graph workload under demand paging with 50%
 * memory oversubscription, with and without the paper's techniques,
 * and print the headline statistics.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "src/core/presets.h"
#include "src/core/system.h"

int
main()
{
    using namespace bauvm;

    const char *workload = "BFS-TTC";
    std::printf("workload: %s, 50%% oversubscription, Table-1 GPU\n\n",
                workload);

    for (Policy policy : {Policy::Baseline, Policy::To, Policy::Ue,
                          Policy::ToUe}) {
        SimConfig config = applyPolicy(paperConfig(0.5), policy);
        const RunResult r = runWorkload(config, workload,
                                        WorkloadScale::Small,
                                        /*validate=*/true);
        std::printf("%-14s cycles=%-12llu batches=%-5llu "
                    "faults/batch=%-7.1f evictions=%llu\n",
                    policyName(policy).c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.batches),
                    r.avg_batch_pages,
                    static_cast<unsigned long long>(r.evictions));
    }
    return 0;
}
