/**
 * @file
 * Example: exporting the UVM runtime's batch timeline as CSV.
 *
 * Runs one workload under two policies and prints, for every fault
 * batch, its begin/first-transfer/end timestamps and composition —
 * the raw data behind the paper's Figs 2, 3, 14 and 16. Pipe to a
 * file and plot.
 */

#include <cstdio>
#include <string>

#include "src/core/presets.h"
#include "src/core/system.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;

    const std::string workload = argc > 1 ? argv[1] : "BFS-TWC";
    std::printf("policy,batch,begin_us,handling_us,processing_us,"
                "fault_pages,prefetch_pages,duplicates,mb\n");

    for (Policy policy : {Policy::Baseline, Policy::ToUe}) {
        const SimConfig config = applyPolicy(paperConfig(0.5), policy);
        const RunResult r = runWorkload(config, workload,
                                        WorkloadScale::Small,
                                        /*validate=*/true);
        std::size_t idx = 0;
        for (const auto &b : r.batch_records) {
            std::printf(
                "%s,%zu,%.1f,%.1f,%.1f,%u,%u,%u,%.2f\n",
                policyName(policy).c_str(), idx++,
                static_cast<double>(b.begin) / kCyclesPerUs,
                static_cast<double>(b.handlingTime()) / kCyclesPerUs,
                static_cast<double>(b.processingTime()) / kCyclesPerUs,
                b.fault_pages, b.prefetch_pages, b.duplicate_faults,
                static_cast<double>(b.migrated_bytes) /
                    (1024.0 * 1024.0));
        }
    }
    return 0;
}
