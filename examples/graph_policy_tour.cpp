/**
 * @file
 * Example: tour of the five BFS implementations under each memory-
 * management policy — which variant/policy pair performs best on a
 * shared R-MAT graph at 50% memory, and why (batch/eviction stats).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/presets.h"
#include "src/core/system.h"

int
main()
{
    using namespace bauvm;

    const std::vector<std::string> variants = {
        "BFS-TTC", "BFS-TWC", "BFS-TA", "BFS-TF", "BFS-DWC",
    };
    const std::vector<Policy> policies = {
        Policy::Baseline, Policy::To, Policy::Ue, Policy::ToUe,
    };

    std::printf("%-9s", "");
    for (Policy p : policies)
        std::printf(" %14s", policyName(p).c_str());
    std::printf("   (speedup vs BASELINE; cycles in brackets)\n");

    for (const auto &variant : variants) {
        double base_cycles = 0.0;
        std::printf("%-9s", variant.c_str());
        for (Policy p : policies) {
            const SimConfig config =
                applyPolicy(paperConfig(0.5), p);
            const RunResult r = runWorkload(config, variant,
                                            WorkloadScale::Small,
                                            /*validate=*/true);
            if (p == Policy::Baseline)
                base_cycles = static_cast<double>(r.cycles);
            std::printf(" %7.2fx[%4lluk]",
                        base_cycles / static_cast<double>(r.cycles),
                        static_cast<unsigned long long>(r.cycles /
                                                        1000));
        }
        std::printf("\n");
    }
    return 0;
}
