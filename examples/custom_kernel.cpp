/**
 * @file
 * Example: writing a custom workload against the public API.
 *
 * A workload is (1) unified-memory arrays allocated from its
 * DeviceAllocator, (2) a sequence of kernels whose warps are C++20
 * generator coroutines yielding WarpOps, and (3) a validate() check.
 * This one implements a strided "pointer-chase" histogram: each thread
 * hashes into a table — an intentionally irregular access pattern —
 * then the host checks the histogram sums.
 */

#include <cstdio>

#include "src/core/presets.h"
#include "src/core/system.h"
#include "src/sim/log.h"
#include "src/workloads/device_array.h"
#include "src/workloads/workload.h"

namespace
{

using namespace bauvm;

class HistogramWorkload : public Workload
{
  public:
    std::string name() const override { return "custom-histogram"; }

    void
    build(WorkloadScale, std::uint64_t seed) override
    {
        seed_ = seed;
        d_keys_ = DeviceArray<std::uint32_t>(alloc_, kKeys, "keys");
        d_hist_ = DeviceArray<std::uint32_t>(alloc_, kBins, "hist");
        std::uint64_t x = seed;
        for (std::size_t i = 0; i < kKeys; ++i) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            d_keys_[i] = static_cast<std::uint32_t>(x >> 33) % kBins;
        }
        d_hist_.fill(0);
    }

    bool
    nextKernel(KernelInfo *out) override
    {
        if (launched_)
            return false;
        launched_ = true;
        out->name = "histogram";
        out->threads_per_block = 256;
        out->regs_per_thread = 32;
        out->num_blocks = kKeys / 256;
        HistogramWorkload *self = this;
        out->make_program = [self](WarpCtx ctx) {
            return histWarp(ctx, self);
        };
        return true;
    }

    void
    validate() const override
    {
        std::uint64_t total = 0;
        for (std::size_t b = 0; b < kBins; ++b)
            total += d_hist_[b];
        if (total != kKeys)
            panic("histogram lost updates: %llu != %zu",
                  static_cast<unsigned long long>(total), kKeys);
    }

    static WarpProgram
    histWarp(WarpCtx ctx, HistogramWorkload *self)
    {
        // Coalesced key load, then a divergent atomic scatter: the
        // canonical irregular-update idiom.
        std::vector<VAddr> ka;
        std::vector<std::uint32_t> tids;
        for (std::uint32_t lane = 0; lane < ctx.laneCount(); ++lane) {
            const std::uint32_t tid = ctx.globalThread(lane);
            tids.push_back(tid);
            ka.push_back(self->d_keys_.addr(tid));
        }
        co_yield WarpOp::load(std::move(ka));

        std::vector<VAddr> ha;
        for (std::uint32_t tid : tids) {
            const std::uint32_t bin = self->d_keys_[tid];
            ++self->d_hist_[bin];
            ha.push_back(self->d_hist_.addr(bin));
        }
        co_yield WarpOp::atomic(std::move(ha));
    }

  private:
    static constexpr std::size_t kKeys = 1 << 18;
    static constexpr std::size_t kBins = 1 << 16;
    DeviceArray<std::uint32_t> d_keys_;
    DeviceArray<std::uint32_t> d_hist_;
    std::uint64_t seed_ = 0;
    bool launched_ = false;
};

} // namespace

int
main()
{
    using namespace bauvm;

    std::printf("custom workload through the full UVM stack, "
                "25%% memory:\n\n");
    for (Policy policy : {Policy::Baseline, Policy::ToUe}) {
        HistogramWorkload workload;
        GpuUvmSystem system(applyPolicy(paperConfig(0.25), policy));
        const RunResult r =
            system.run(workload, WorkloadScale::Small);
        workload.validate();
        std::printf("%-10s cycles=%-12llu batches=%-4llu "
                    "migrations=%llu\n",
                    policyName(policy).c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.batches),
                    static_cast<unsigned long long>(r.migrations));
    }
    return 0;
}
