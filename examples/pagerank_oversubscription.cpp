/**
 * @file
 * Example: how PageRank's execution time degrades as GPU memory shrinks
 * relative to the working set, and how much Unobtrusive Eviction
 * recovers — the scenario from the paper's Fig 17, driven through the
 * public API.
 */

#include <cstdio>

#include "src/core/presets.h"
#include "src/core/system.h"

int
main()
{
    using namespace bauvm;

    std::printf("PageRank under memory oversubscription "
                "(R-MAT graph, Table-1 GPU)\n\n");
    std::printf("%-7s %-15s %-15s %-9s %-10s\n", "ratio",
                "baseline cycles", "UE cycles", "UE gain", "evictions");

    for (double ratio : {1.0, 0.75, 0.5, 0.25}) {
        SimConfig base = applyPolicy(paperConfig(ratio),
                                     Policy::Baseline);
        SimConfig ue = applyPolicy(paperConfig(ratio), Policy::Ue);

        const RunResult rb =
            runWorkload(base, "PR", WorkloadScale::Small, true);
        const RunResult ru =
            runWorkload(ue, "PR", WorkloadScale::Small, true);

        std::printf("%-7.2f %-15llu %-15llu %-9.2f %-10llu\n", ratio,
                    static_cast<unsigned long long>(rb.cycles),
                    static_cast<unsigned long long>(ru.cycles),
                    static_cast<double>(rb.cycles) /
                        static_cast<double>(ru.cycles),
                    static_cast<unsigned long long>(rb.evictions));
    }
    std::printf("\nUE's benefit grows as evictions move onto the "
                "critical path.\n");
    return 0;
}
