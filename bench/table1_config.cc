/**
 * @file
 * Table 1: configuration of the simulated system.
 */

#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/presets.h"
#include "src/core/report.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);
    const SimConfig c = paperConfig(opt.ratio, opt.seed);

    printBanner("Table 1: Configuration of the simulated system");
    Table t({"Component", "Configuration"});
    char buf[160];

    std::snprintf(buf, sizeof buf,
                  "%u SMs, 1GHz, %u threads per SM, %lluKB register "
                  "files per SM",
                  c.gpu.num_sms, c.gpu.max_threads_per_sm,
                  static_cast<unsigned long long>(
                      c.gpu.regfile_bytes_per_sm / 1024));
    t.addRow({"Core", buf});

    std::snprintf(buf, sizeof buf,
                  "%lluKB, %u-way, LRU, %u-cycle hit latency",
                  static_cast<unsigned long long>(c.mem.l1.size_bytes /
                                                  1024),
                  c.mem.l1.associativity,
                  static_cast<unsigned>(c.mem.l1.hit_latency));
    t.addRow({"Private L1 Cache", buf});

    std::snprintf(buf, sizeof buf, "%u entries per core, fully "
                                   "associative, LRU",
                  c.mem.l1_tlb.entries);
    t.addRow({"Private L1 TLB", buf});

    std::snprintf(buf, sizeof buf, "%lluMB total, %u-way, LRU",
                  static_cast<unsigned long long>(c.mem.l2.size_bytes /
                                                  (1024 * 1024)),
                  c.mem.l2.associativity);
    t.addRow({"Shared L2 Cache", buf});

    std::snprintf(buf, sizeof buf, "%u entries total, %u-way "
                                   "associative, LRU",
                  c.mem.l2_tlb.entries, c.mem.l2_tlb.associativity);
    t.addRow({"Shared L2 TLB", buf});

    std::snprintf(buf, sizeof buf, "%u cycle latency",
                  static_cast<unsigned>(c.mem.dram_latency));
    t.addRow({"Memory", buf});

    std::snprintf(buf, sizeof buf, "%u entries",
                  c.uvm.fault_buffer_entries);
    t.addRow({"Fault Buffer", buf});

    std::snprintf(buf, sizeof buf,
                  "%lluKB page size, %.0fus GPU runtime fault handling "
                  "time, %.2fGB/s PCIe bandwidth",
                  static_cast<unsigned long long>(c.uvm.page_bytes /
                                                  1024),
                  c.uvm.fault_handling_us, c.uvm.pcie_gbps);
    t.addRow({"Fault Handling", buf});

    std::snprintf(buf, sizeof buf,
                  "shared page-table walker, %u concurrent walks, "
                  "%u-entry walk cache",
                  c.mem.walker_threads, c.mem.walk_cache_entries);
    t.addRow({"Address Translation", buf});

    t.emit(opt.csv);
    return 0;
}
