/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot primitives:
 * event queue scheduling, TLB/cache lookups, coalescing, page-table
 * walks and R-MAT generation. These bound the simulator's own
 * throughput, not the modeled GPU's.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "src/graph/generator.h"
#include "src/gpu/coalescer.h"
#include "src/mem/cache.h"
#include "src/mem/page_table_walker.h"
#include "src/mem/tlb.h"
#include "src/sim/event_queue.h"
#ifdef BAUVM_LEGACY_DIFFERENTIAL
#include "src/sim/legacy_event_queue.h"
#endif // BAUVM_LEGACY_DIFFERENTIAL
#include "src/sim/rng.h"

namespace
{

using namespace bauvm;

// ---------------------------------------------------------------------
// Event-queue kernels. Each shape runs against both the production
// slab/calendar kernel (EventQueue) and the retained std::function +
// unordered_map reference (LegacyEventQueue) so bench/perf_smoke can
// report the speedup of the rewrite. The shapes mirror real simulator
// traffic:
//  - ScheduleRun:   the original scatter of 1024 absolute times;
//  - ShortDelay:    chained 1-8 cycle events (L1/L2 hits, issue
//                   slots) — the calendar ring's sweet spot;
//  - CancelHeavy:   schedule/cancel churn (speculative wakeups,
//                   rescheduled timers) — exercises tombstones;
//  - MixedHorizon:  short delays interleaved with far-future PCIe
//                   completions and batch timers — ring + heap mix.
// ---------------------------------------------------------------------

template <typename Queue>
void
eventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        Queue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            q.scheduleAt(static_cast<Cycle>(i * 7 % 997),
                         [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

template <typename Queue>
void
eventQueueShortDelay(benchmark::State &state)
{
    for (auto _ : state) {
        Queue q;
        std::uint64_t sink = 0;
        // 8 chains of self-rescheduling short-delay events, 128 hops
        // each: the shape of cache-hit latencies and coalescer ticks.
        struct Chain {
            Queue *q;
            std::uint64_t *sink;
            int hops = 0;
            void
            operator()()
            {
                ++*sink;
                if (++hops < 128) {
                    auto next = *this;
                    q->scheduleAfter(1 + (hops & 7), std::move(next));
                }
            }
        };
        for (int c = 0; c < 8; ++c)
            q.scheduleAt(static_cast<Cycle>(c), Chain{&q, &sink});
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 8 * 128);
}

template <typename Queue>
void
eventQueueCancelHeavy(benchmark::State &state)
{
    for (auto _ : state) {
        Queue q;
        std::uint64_t sink = 0;
        std::vector<std::uint64_t> ids; // EventId / LegacyEventId
        ids.reserve(1024);
        for (int i = 0; i < 1024; ++i)
            ids.push_back(q.scheduleAt(
                static_cast<Cycle>(1 + i * 13 % 4096),
                [&sink] { ++sink; }));
        // Cancel three quarters — speculative wakeups that were
        // superseded — then drain the survivors.
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (i % 4 != 0)
                q.cancel(ids[i]);
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

template <typename Queue>
void
eventQueueMixedHorizon(benchmark::State &state)
{
    for (auto _ : state) {
        Queue q;
        std::uint64_t sink = 0;
        // 7/8 near-future (hit latencies), 1/8 far-future (PCIe
        // completions, batch timers) — the simulator's real mix.
        for (int i = 0; i < 1024; ++i) {
            const Cycle when =
                (i % 8 == 7)
                    ? static_cast<Cycle>(5000 + i * 97 % 100000)
                    : static_cast<Cycle>(i * 7 % 997);
            q.scheduleAt(when, [&sink] { ++sink; });
        }
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    eventQueueScheduleRun<EventQueue>(state);
}
BENCHMARK(BM_EventQueueScheduleRun);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyEventQueueScheduleRun(benchmark::State &state)
{
    eventQueueScheduleRun<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueScheduleRun);
#endif // BAUVM_LEGACY_DIFFERENTIAL

void
BM_EventQueueShortDelay(benchmark::State &state)
{
    eventQueueShortDelay<EventQueue>(state);
}
BENCHMARK(BM_EventQueueShortDelay);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyEventQueueShortDelay(benchmark::State &state)
{
    eventQueueShortDelay<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueShortDelay);
#endif // BAUVM_LEGACY_DIFFERENTIAL

void
BM_EventQueueCancelHeavy(benchmark::State &state)
{
    eventQueueCancelHeavy<EventQueue>(state);
}
BENCHMARK(BM_EventQueueCancelHeavy);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyEventQueueCancelHeavy(benchmark::State &state)
{
    eventQueueCancelHeavy<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueCancelHeavy);
#endif // BAUVM_LEGACY_DIFFERENTIAL

void
BM_EventQueueMixedHorizon(benchmark::State &state)
{
    eventQueueMixedHorizon<EventQueue>(state);
}
BENCHMARK(BM_EventQueueMixedHorizon);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyEventQueueMixedHorizon(benchmark::State &state)
{
    eventQueueMixedHorizon<LegacyEventQueue>(state);
}
BENCHMARK(BM_LegacyEventQueueMixedHorizon);
#endif // BAUVM_LEGACY_DIFFERENTIAL

void
BM_TlbLookup(benchmark::State &state)
{
    TlbConfig config{64, 0, 1};
    Tlb tlb(config, "bm");
    Rng rng(7);
    for (auto _ : state) {
        const PageNum vpn = rng.nextBelow(256);
        if (!tlb.lookup(vpn))
            tlb.insert(vpn);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig config{16 * 1024, 4, 128, 28};
    Cache cache(config, "bm");
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBelow(4096), false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalesce32Divergent(benchmark::State &state)
{
    Coalescer coalescer(128);
    Rng rng(7);
    std::vector<VAddr> addrs(32);
    for (auto _ : state) {
        for (auto &a : addrs)
            a = rng.nextBelow(1 << 24);
        benchmark::DoNotOptimize(coalescer.coalesce(addrs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coalesce32Divergent);

void
BM_PageWalk(benchmark::State &state)
{
    MemConfig config;
    PageTableWalker walker(config);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            walker.walk(rng.nextBelow(1 << 20), t));
        t += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageWalk);

void
BM_RmatGenerate(benchmark::State &state)
{
    for (auto _ : state) {
        RmatParams params;
        params.num_vertices = 1 << 12;
        params.num_edges = 1 << 14;
        benchmark::DoNotOptimize(generateRmat(params));
    }
}
BENCHMARK(BM_RmatGenerate);

} // namespace

BENCHMARK_MAIN();
