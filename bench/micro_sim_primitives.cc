/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot primitives:
 * event queue scheduling, TLB/cache lookups, coalescing, page-table
 * walks and R-MAT generation. These bound the simulator's own
 * throughput, not the modeled GPU's.
 */

#include <benchmark/benchmark.h>

#include "src/graph/generator.h"
#include "src/gpu/coalescer.h"
#include "src/mem/cache.h"
#include "src/mem/page_table_walker.h"
#include "src/mem/tlb.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace
{

using namespace bauvm;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            q.scheduleAt(static_cast<Cycle>(i * 7 % 997),
                         [&sink] { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_TlbLookup(benchmark::State &state)
{
    TlbConfig config{64, 0, 1};
    Tlb tlb(config, "bm");
    Rng rng(7);
    for (auto _ : state) {
        const PageNum vpn = rng.nextBelow(256);
        if (!tlb.lookup(vpn))
            tlb.insert(vpn);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookup);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig config{16 * 1024, 4, 128, 28};
    Cache cache(config, "bm");
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBelow(4096), false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalesce32Divergent(benchmark::State &state)
{
    Coalescer coalescer(128);
    Rng rng(7);
    std::vector<VAddr> addrs(32);
    for (auto _ : state) {
        for (auto &a : addrs)
            a = rng.nextBelow(1 << 24);
        benchmark::DoNotOptimize(coalescer.coalesce(addrs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Coalesce32Divergent);

void
BM_PageWalk(benchmark::State &state)
{
    MemConfig config;
    PageTableWalker walker(config);
    Rng rng(7);
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            walker.walk(rng.nextBelow(1 << 20), t));
        t += 10;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageWalk);

void
BM_RmatGenerate(benchmark::State &state)
{
    for (auto _ : state) {
        RmatParams params;
        params.num_vertices = 1 << 12;
        params.num_edges = 1 << 14;
        benchmark::DoNotOptimize(generateRmat(params));
    }
}
BENCHMARK(BM_RmatGenerate);

} // namespace

BENCHMARK_MAIN();
