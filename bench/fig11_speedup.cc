/**
 * @file
 * Figure 11 (the headline result): speedup over the state-of-the-art
 * prefetching baseline for BASELINE with PCIe compression, TO, UE,
 * TO+UE and ETC, per workload and on average, at 50% memory
 * oversubscription.
 *
 * Paper: TO+UE averages 2x over BASELINE, 1.81x over BASELINE with
 * PCIe compression, and 1.79x over ETC; TO alone contributes 22%, UE
 * adds another 61%; BFS-DWC gains 4.13x from UE.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    const auto &workloads = irregularWorkloadNames();
    const auto &policies = allPolicies();
    auto results = runMatrix(workloads, policies, opt);

    printBanner("Figure 11: speedup over BASELINE "
                "(50% memory oversubscription)");
    std::vector<std::string> headers = {"workload"};
    for (Policy p : policies)
        headers.push_back(policyName(p));
    Table t(headers);

    std::map<Policy, std::vector<double>> speedups;
    for (const auto &w : workloads) {
        const double base =
            static_cast<double>(results[w][Policy::Baseline].cycles);
        std::vector<std::string> row = {w};
        for (Policy p : policies) {
            const double s =
                base / static_cast<double>(results[w][p].cycles);
            speedups[p].push_back(s);
            row.push_back(Table::num(s, 2));
        }
        t.addRow(row);
    }
    // The paper reports arithmetic-average speedups (the BFS-DWC
    // outlier pulls its 2x headline up); print both means.
    std::vector<std::string> avg = {"AVERAGE"};
    for (Policy p : policies)
        avg.push_back(Table::num(amean(speedups[p]), 2));
    t.addRow(avg);
    std::vector<std::string> gmean = {"GEOMEAN"};
    for (Policy p : policies)
        gmean.push_back(Table::num(geomean(speedups[p]), 2));
    t.addRow(gmean);
    t.emit(opt.csv);

    // Section 5.2 headline derivations.
    const double toue = amean(speedups[Policy::ToUe]);
    const double pciec = amean(speedups[Policy::BaselinePcieComp]);
    const double etc = amean(speedups[Policy::Etc]);
    std::printf("\nsection 5.2 summary (paper in parentheses):\n");
    std::printf("  TO+UE vs BASELINE:            %.2fx (2.00x)\n",
                toue);
    std::printf("  TO+UE vs BASELINE+PCIeC:      %.2fx (1.81x)\n",
                toue / pciec);
    std::printf("  TO+UE vs ETC:                 %.2fx (1.79x)\n",
                toue / etc);
    std::printf("  TO alone:                     %.2fx (1.22x)\n",
                amean(speedups[Policy::To]));
    std::printf("  UE alone:                     %.2fx\n",
                amean(speedups[Policy::Ue]));
    return 0;
}
