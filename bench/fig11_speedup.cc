/**
 * @file
 * Figure 11 (the headline result): speedup over the state-of-the-art
 * prefetching baseline for BASELINE with PCIe compression, TO, UE,
 * TO+UE and ETC, per workload and on average, at 50% memory
 * oversubscription.
 *
 * Paper: TO+UE averages 2x over BASELINE, 1.81x over BASELINE with
 * PCIe compression, and 1.79x over ETC; TO alone contributes 22%, UE
 * adds another 61%; BFS-DWC gains 4.13x from UE.
 *
 * The (workload x policy) matrix runs on the parallel SweepRunner
 * (--jobs N); pass --json PATH for the structured export.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/runner/sweep_runner.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    SweepSpec spec;
    spec.bench = "fig11_speedup";
    spec.workloads = opt.workloadsOr( // --workloads: e.g. frontier
        WorkloadRegistry::instance().enumerate(
            WorkloadKind::Irregular));
    spec.policies = allPolicies();
    spec.opt = opt;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    std::fprintf(stderr,
                 "fig11: %zu-cell matrix on %zu worker(s) in %.2fs\n",
                 sweep.cells.size(), sweep.jobs, sweep.elapsed_s);
    if (!opt.json_path.empty())
        sweep.writeJson(opt.json_path);

    printBanner("Figure 11: speedup over BASELINE "
                "(50% memory oversubscription)");
    std::vector<std::string> headers = {"workload"};
    for (Policy p : spec.policies)
        headers.push_back(policyName(p));
    Table t(headers);

    std::map<Policy, std::vector<double>> speedups;
    for (const auto &w : spec.workloads) {
        const CellOutcome *base = sweep.find(w, Policy::Baseline);
        if (!base || !base->ok) {
            warn("fig11: skipping %s (baseline cell failed)",
                 w.c_str());
            continue;
        }
        const double base_cycles =
            static_cast<double>(base->result.cycles);
        std::vector<std::string> row = {w};
        for (Policy p : spec.policies) {
            const CellOutcome *cell = sweep.find(w, p);
            if (!cell || !cell->ok) {
                row.push_back("FAIL");
                continue;
            }
            const double s =
                base_cycles / static_cast<double>(cell->result.cycles);
            speedups[p].push_back(s);
            row.push_back(Table::num(s, 2));
        }
        t.addRow(row);
    }
    // The paper reports arithmetic-average speedups (the BFS-DWC
    // outlier pulls its 2x headline up); print both means.
    std::vector<std::string> avg = {"AVERAGE"};
    for (Policy p : spec.policies)
        avg.push_back(Table::num(amean(speedups[p]), 2));
    t.addRow(avg);
    std::vector<std::string> gmean = {"GEOMEAN"};
    for (Policy p : spec.policies)
        gmean.push_back(Table::num(geomean(speedups[p]), 2));
    t.addRow(gmean);
    t.emit(opt.csv);

    // Section 5.2 headline derivations.
    const double toue = amean(speedups[Policy::ToUe]);
    const double pciec = amean(speedups[Policy::BaselinePcieComp]);
    const double etc = amean(speedups[Policy::Etc]);
    std::printf("\nsection 5.2 summary (paper in parentheses):\n");
    std::printf("  TO+UE vs BASELINE:            %.2fx (2.00x)\n",
                toue);
    std::printf("  TO+UE vs BASELINE+PCIeC:      %.2fx (1.81x)\n",
                pciec > 0.0 ? toue / pciec : 0.0);
    std::printf("  TO+UE vs ETC:                 %.2fx (1.79x)\n",
                etc > 0.0 ? toue / etc : 0.0);
    std::printf("  TO alone:                     %.2fx (1.22x)\n",
                amean(speedups[Policy::To]));
    std::printf("  UE alone:                     %.2fx\n",
                amean(speedups[Policy::Ue]));
    return 0;
}
