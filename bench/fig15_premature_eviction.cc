/**
 * @file
 * Figure 15: premature-eviction rate (evictions whose page is faulted
 * back in), baseline vs thread oversubscription. Paper: TO *decreases*
 * premature evictions for most workloads (better page utilization),
 * with BFS-TWC as the exception, kept in check by the dynamic
 * oversubscription control.
 */

#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Figure 15: premature eviction rate (BASELINE vs TO)");
    Table t({"workload", "BASELINE", "TO", "TO evictions",
             "TO ctx switches"});

    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        const RunResult rb = runCell(name, Policy::Baseline, opt);
        const RunResult rt = runCell(name, Policy::To, opt);
        t.addRow({name, Table::num(100.0 * rb.premature_rate, 1) + "%",
                  Table::num(100.0 * rt.premature_rate, 1) + "%",
                  std::to_string(rt.evictions),
                  std::to_string(rt.context_switches)});
    }
    t.emit(opt.csv);
    return 0;
}
