/**
 * @file
 * bauvm_sweepd: the sweep-service daemon entry point.
 *
 * Starts a SweepService (src/serve/sweep_service.h) on a Unix-domain
 * socket and serves bauvm.sweep-request/1 submissions until SIGTERM/
 * SIGINT. Pair it with bauvm_submit:
 *
 *   bauvm_sweepd --socket /tmp/bauvm.sock --cache .bauvm-cells &
 *   bauvm_submit --socket /tmp/bauvm.sock --request matrix.json \
 *                --json out.json
 *
 * Because finished cells checkpoint into the content-addressed cache,
 * SIGKILLing the daemon mid-sweep loses only in-flight cells: restart
 * it on the same --cache and resubmit, and the sweep resumes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/serve/sweep_service.h"
#include "src/sim/log.h"

namespace
{

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: bauvm_sweepd --socket PATH [options]\n"
        "  --socket PATH     Unix-domain socket to listen on\n"
        "  --cache DIR       content-addressed result cache "
        "(checkpoint/resume/dedupe; default: .bauvm-cells)\n"
        "  --no-cache        disable the result cache\n"
        "  --max-workers N   clamp per-request worker processes "
        "(0 = unclamped, default)\n"
        "  --quiet           no per-request stderr logging\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bauvm::SweepServiceOptions opt;
    opt.cache_dir = ".bauvm-cells";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                bauvm::fatal("missing value for %s", what);
            return argv[++i];
        };
        if (arg == "--socket") {
            opt.socket_path = next("--socket");
        } else if (arg == "--cache") {
            opt.cache_dir = next("--cache");
        } else if (arg == "--no-cache") {
            opt.cache_dir.clear();
        } else if (arg == "--max-workers") {
            opt.max_workers = static_cast<std::size_t>(
                std::strtoull(next("--max-workers").c_str(), nullptr,
                              10));
        } else if (arg == "--quiet") {
            opt.verbose = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else {
            printUsage(stderr);
            bauvm::fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (opt.socket_path.empty()) {
        printUsage(stderr);
        bauvm::fatal("--socket is required");
    }

    bauvm::SweepService service(std::move(opt));
    std::string error;
    if (!service.start(&error))
        bauvm::fatal("%s", error.c_str());
    return service.run();
}
