/**
 * @file
 * Figure 12: total number of fault batches, thread oversubscription
 * relative to baseline. Paper: TO cuts the batch count by 51% on
 * average.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Figure 12: relative number of batches (TO vs "
                "BASELINE)");
    Table t({"workload", "BASELINE batches", "TO batches", "relative"});

    std::vector<double> rel;
    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        const RunResult rb = runCell(name, Policy::Baseline, opt);
        const RunResult rt = runCell(name, Policy::To, opt);
        const double r = rb.batches
                             ? static_cast<double>(rt.batches) /
                                   static_cast<double>(rb.batches)
                             : 1.0;
        rel.push_back(r);
        t.addRow({name, std::to_string(rb.batches),
                  std::to_string(rt.batches), Table::num(r, 3)});
    }
    t.addRow({"AVERAGE", "", "", Table::num(amean(rel), 3)});
    t.emit(opt.csv);

    std::printf("\npaper: TO reduces the number of batches by 51%% on "
                "average (relative 0.49)\n");
    return 0;
}
