/**
 * @file
 * Figure 8: performance of a GPU with 50% memory oversubscription
 * normalized to unlimited memory, and the effect of ideal
 * (zero-latency) eviction.
 *
 * Paper: baseline loses 46% on average vs unlimited; ideal eviction
 * recovers 16%.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Figure 8: performance normalized to unlimited memory "
                "(50% oversubscription)");
    Table t({"workload", "BASELINE", "IDEAL EVICTION"});

    std::vector<double> base_rel, ideal_rel;
    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        const RunResult unlimited =
            runCell(name, Policy::Unlimited, opt);
        const RunResult baseline = runCell(name, Policy::Baseline, opt);
        const RunResult ideal =
            runCell(name, Policy::IdealEviction, opt);

        const double b = static_cast<double>(unlimited.cycles) /
                         static_cast<double>(baseline.cycles);
        const double i = static_cast<double>(unlimited.cycles) /
                         static_cast<double>(ideal.cycles);
        base_rel.push_back(b);
        ideal_rel.push_back(i);
        t.addRow({name, Table::num(b, 3), Table::num(i, 3)});
    }
    t.addRow({"AVERAGE", Table::num(amean(base_rel), 3),
              Table::num(amean(ideal_rel), 3)});
    t.emit(opt.csv);

    std::printf("\npaper: BASELINE 0.54 avg, IDEAL EVICTION +16%% over "
                "baseline\n");
    return 0;
}
