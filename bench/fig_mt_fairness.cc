/**
 * @file
 * Multi-tenant fairness: concurrent workloads contending for device
 * memory under the three share policies (free-for-all, strict quota,
 * proportional), against each tenant's solo run on the whole GPU.
 *
 * Two tables:
 *  - per-tenant slowdown (mix cycles / solo cycles) per policy, plus
 *    the evictions each tenant caused and suffered — who pays for
 *    whose faults;
 *  - fairness vs throughput per policy: makespan, aggregate
 *    instructions/kcycle, and Jain's fairness index over the
 *    tenants' normalized progress (1/slowdown) — 1.0 means every
 *    tenant slowed down equally, 1/n means one tenant starved.
 *
 * Default mix: BFS-HYB and PR at equal (50/50) quotas; override with
 * --tenants A:Q,B:Q and --ratio. Cells run through the shared
 * executeCell() path, so --json exports the bauvm.sweep/1.3
 * per-tenant result array and the outcomes are bit-identical to the
 * sweep service running the same mix.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/core/tenant.h"
#include "src/graph/graph_cache.h"
#include "src/runner/cell_spec.h"
#include "src/runner/job.h"
#include "src/runner/sweep_result.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    BenchOptions opt = parseBenchArgs(argc, argv);
    if (opt.tenants.empty()) {
        opt.tenants = {{"BFS-HYB", 0.5, opt.scale},
                       {"PR", 0.5, opt.scale}};
    }
    for (TenantSpec &t : opt.tenants)
        t.scale = opt.scale;
    const std::string mix = tenantMixLabel(opt.tenants);

    const std::vector<SharePolicy> policies = {
        SharePolicy::FreeForAll,
        SharePolicy::StrictQuota,
        SharePolicy::Proportional,
    };

    // Share graph builds across the solo anchors and the mixes.
    GraphBuildCache::Scope graph_scope;

    SweepResult sweep;
    sweep.bench = "fig_mt_fairness";
    sweep.base_seed = opt.seed;
    sweep.scale = opt.scale;
    sweep.ratio = opt.ratio;
    sweep.jobs = 1;
    for (SharePolicy policy : policies) {
        CellExecArgs args;
        args.workload = mix;
        args.policy = Policy::Baseline;
        args.variant = sharePolicyName(policy);
        args.job_seed = deriveJobSeed(opt.seed, mix, Policy::Baseline,
                                      args.variant);
        args.scale = opt.scale;
        SimConfig config = paperConfig(
            opt.ratio, deriveWorkloadSeed(opt.seed, mix));
        opt.applyTo(config);
        config.mt.policy = policy;
        args.config = std::move(config);
        args.soft_timeout_s = opt.timeout_s;
        args.tenants = opt.tenants;

        const CellOutcome out = executeCell(args);
        if (!out.ok) {
            fatal("fig_mt_fairness: %s mix failed under %s: %s",
                  mix.c_str(), args.variant.c_str(),
                  out.error.c_str());
        }
        sweep.cells.push_back(out);
    }
    if (!opt.json_path.empty())
        sweep.writeJson(opt.json_path);

    printBanner("Multi-tenant fairness: " + mix + " (ratio " +
                Table::num(opt.ratio, 2) + ")");

    Table per_tenant({"policy", "tenant", "quota_pages", "slowdown",
                      "evict_caused", "evict_suffered",
                      "peak_resident"});
    for (const CellOutcome &cell : sweep.cells) {
        for (const TenantResult &t : cell.result.tenants) {
            per_tenant.addRow(
                {cell.variant, t.workload,
                 std::to_string(t.quota_pages),
                 Table::num(t.slowdown),
                 std::to_string(t.evictions_caused),
                 std::to_string(t.evictions_suffered),
                 std::to_string(t.peak_resident_pages)});
        }
    }
    per_tenant.emit(opt.csv);

    std::printf("\n");
    Table fairness({"policy", "makespan_cycles", "insn_per_kcycle",
                    "jain_index", "worst_slowdown"});
    for (const CellOutcome &cell : sweep.cells) {
        const RunResult &r = cell.result;
        double sum = 0.0, sum_sq = 0.0, worst = 0.0;
        for (const TenantResult &t : r.tenants) {
            const double progress =
                t.slowdown > 0.0 ? 1.0 / t.slowdown : 0.0;
            sum += progress;
            sum_sq += progress * progress;
            if (t.slowdown > worst)
                worst = t.slowdown;
        }
        const double n = static_cast<double>(r.tenants.size());
        const double jain =
            sum_sq > 0.0 ? (sum * sum) / (n * sum_sq) : 0.0;
        const double ipk =
            r.cycles ? 1000.0 * static_cast<double>(r.instructions) /
                           static_cast<double>(r.cycles)
                     : 0.0;
        fairness.addRow({cell.variant,
                         std::to_string(
                             static_cast<std::uint64_t>(r.cycles)),
                         Table::num(ipk), Table::num(jain),
                         Table::num(worst)});
    }
    fairness.emit(opt.csv);
    return 0;
}
