/**
 * @file
 * Figure 14: average batch processing time for BASELINE, TO and TO+UE,
 * normalized to baseline. Paper: TO grows batch processing time (the
 * batches are bigger), UE pulls it back 27% below the baseline on
 * average.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Figure 14: average batch processing time, normalized "
                "to BASELINE");
    Table t({"workload", "BASELINE", "TO", "TO+UE"});

    std::vector<double> to_rel, toue_rel;
    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        const RunResult rb = runCell(name, Policy::Baseline, opt);
        const RunResult rt = runCell(name, Policy::To, opt);
        const RunResult ru = runCell(name, Policy::ToUe, opt);
        const double b = rb.avg_batch_time;
        const double to = b > 0.0 ? rt.avg_batch_time / b : 1.0;
        const double toue = b > 0.0 ? ru.avg_batch_time / b : 1.0;
        to_rel.push_back(to);
        toue_rel.push_back(toue);
        t.addRow({name, "1.00", Table::num(to, 2),
                  Table::num(toue, 2)});
    }
    t.addRow({"AVERAGE", "1.00", Table::num(amean(to_rel), 2),
              Table::num(amean(toue_rel), 2)});
    t.emit(opt.csv);

    std::printf("\npaper: TO+UE cuts average batch processing time by "
                "27%% vs BASELINE (0.73) while handling more faults "
                "per batch; UE cuts it 60%% vs TO alone\n");
    return 0;
}
