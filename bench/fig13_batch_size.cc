/**
 * @file
 * Figure 13: average batch size, thread oversubscription relative to
 * baseline. Paper: TO processes 2.27x more page faults per batch.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Figure 13: relative average batch size (TO vs "
                "BASELINE)");
    Table t({"workload", "BASELINE faults/batch", "TO faults/batch",
             "relative"});

    std::vector<double> rel;
    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        const RunResult rb = runCell(name, Policy::Baseline, opt);
        const RunResult rt = runCell(name, Policy::To, opt);
        const double r = rb.avg_batch_pages > 0.0
                             ? rt.avg_batch_pages / rb.avg_batch_pages
                             : 1.0;
        rel.push_back(r);
        t.addRow({name, Table::num(rb.avg_batch_pages, 1),
                  Table::num(rt.avg_batch_pages, 1), Table::num(r, 2)});
    }
    t.addRow({"AVERAGE", "", "", Table::num(amean(rel), 2)});
    t.emit(opt.csv);

    std::printf("\npaper: TO grows the average batch size 2.27x\n");
    return 0;
}
