/**
 * @file
 * Figure 1: working-set fraction vs number of active GPU cores (SMs),
 * for regular and irregular workloads.
 *
 * Methodology: the workload is executed functionally while collecting,
 * per thread block, the set of pages it touches. The working set for k
 * active SMs is the average (over consecutive windows) of the fraction
 * of footprint pages touched by the k * blocks_per_sm thread blocks
 * that would be co-resident — exactly the quantity memory-aware core
 * throttling tries to shrink. Regular workloads partition their data by
 * block, so the fraction scales with k; the graph workloads share the
 * CSR arrays across every core, so the curve is flat and throttling
 * cannot reduce the working set (the paper's argument against ETC's MT
 * for irregular applications).
 */

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload.h"
#include "src/workloads/workload_registry.h"

namespace
{

using namespace bauvm;

/** blocks co-resident per SM in the Table 1 machine (occupancy 4). */
constexpr std::uint32_t kBlocksPerSm = 4;
constexpr std::uint32_t kMaxSms = 16;

std::vector<double>
workingSetCurve(const std::string &name, WorkloadScale scale,
                std::uint64_t seed)
{
    auto workload = WorkloadRegistry::instance().create(name);
    workload->build(scale, seed);

    // Collect page sets per block, functionally (no timing model).
    // Block ids repeat across kernels; the union across kernels is
    // what a block resident at that grid position touches.
    std::map<std::uint32_t, std::set<PageNum>> block_pages;
    runFunctional(*workload, 64 * 1024,
                  [&](std::uint32_t block, PageNum page) {
                      block_pages[block].insert(page);
                  });

    const double footprint =
        static_cast<double>(workload->allocator().footprintPages());
    const std::uint32_t num_blocks =
        block_pages.empty() ? 0 : block_pages.rbegin()->first + 1;

    std::vector<double> curve;
    for (std::uint32_t k = 1; k <= kMaxSms; ++k) {
        const std::uint32_t window = k * kBlocksPerSm;
        double sum = 0.0;
        std::uint32_t windows = 0;
        for (std::uint32_t lo = 0; lo + window <= num_blocks;
             lo += window) {
            std::set<PageNum> pages;
            for (std::uint32_t b = lo; b < lo + window; ++b) {
                auto it = block_pages.find(b);
                if (it != block_pages.end())
                    pages.insert(it->second.begin(), it->second.end());
            }
            sum += static_cast<double>(pages.size()) / footprint;
            ++windows;
        }
        if (windows == 0) {
            // Fewer blocks than the window: everything runs at once.
            std::set<PageNum> pages;
            for (const auto &[b, s] : block_pages)
                pages.insert(s.begin(), s.end());
            sum = static_cast<double>(pages.size()) / footprint;
            windows = 1;
        }
        curve.push_back(sum / windows);
    }
    return curve;
}

void
printGroup(const char *title, const std::vector<std::string> &names,
           WorkloadScale scale, std::uint64_t seed, bool csv)
{
    printBanner(title);
    std::vector<std::string> headers = {"SMs"};
    std::vector<std::vector<double>> curves;
    for (const auto &n : names) {
        std::fprintf(stderr, "  tracing %s ...\n", n.c_str());
        headers.push_back(n);
        curves.push_back(workingSetCurve(n, scale, seed));
    }
    Table t(headers);
    for (std::uint32_t k = 1; k <= kMaxSms; ++k) {
        std::vector<std::string> row = {std::to_string(k)};
        for (const auto &c : curves)
            row.push_back(Table::num(100.0 * c[k - 1], 1) + "%");
        t.addRow(row);
    }
    t.emit(csv);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bauvm;
    BenchOptions opt = parseBenchArgs(argc, argv);

    printGroup("Figure 1 (top): working set vs active SMs, regular "
               "workloads",
               WorkloadRegistry::instance().enumerate(WorkloadKind::Regular), opt.scale, opt.seed, opt.csv);

    const std::vector<std::string> irregular = {
        "BC", "BFS-TTC", "GC-DTC", "KCORE", "PR", "SSSP-TWC",
    };
    printGroup("Figure 1 (bottom): working set vs active SMs, "
               "irregular workloads",
               irregular, opt.scale, opt.seed, opt.csv);
    return 0;
}
