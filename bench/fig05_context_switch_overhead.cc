/**
 * @file
 * Figure 5: performance degradation when provisioning one additional
 * thread block per SM *requires context switching* on a traditional
 * GPU (no demand paging: everything preloaded).
 *
 * Baseline: preloaded memory, no extra blocks. Variant: one extra block
 * per SM with full context save/restore through global memory,
 * switching whenever all warps of an active block stall on memory. The
 * paper reports an average 49% slowdown — the point being that TO's
 * switching cost only pays off once page migrations dominate.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Figure 5: relative performance with +1 context-"
                "switched block per SM (traditional GPU)");
    Table t({"workload", "baseline cycles", "with ctx-switched block",
             "relative perf", "switches"});

    std::vector<double> rels;
    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        SimConfig base = paperConfig(/*ratio=*/0.0, opt.seed);
        base.uvm.preload = true;

        SimConfig oversub = base;
        oversub.to.enabled = true;
        oversub.to.initial_extra_blocks = 1;
        oversub.to.max_extra_blocks = 1;
        oversub.to.switch_on_memory_stall = true;

        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        const RunResult rb =
            runWorkload(base, name, opt.scale, /*validate=*/false);
        const RunResult ro =
            runWorkload(oversub, name, opt.scale, /*validate=*/false);

        const double rel = static_cast<double>(rb.cycles) /
                           static_cast<double>(ro.cycles);
        rels.push_back(rel);
        t.addRow({name, std::to_string(rb.cycles),
                  std::to_string(ro.cycles), Table::num(rel, 3),
                  std::to_string(ro.context_switches)});
    }
    t.addRow({"AVERAGE", "", "", Table::num(amean(rels), 3), ""});
    t.emit(opt.csv);

    std::printf("\npaper: average relative performance 0.51 "
                "(49%% degradation)\n");
    return 0;
}
