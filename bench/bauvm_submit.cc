/**
 * @file
 * bauvm_submit: submit a sweep request to bauvm_sweepd and collect
 * the merged result.
 *
 * Reads a bauvm.sweep-request/1 document (file or stdin), submits it
 * over the daemon's Unix socket, streams per-cell progress to stderr,
 * and writes the merged bauvm.sweep/1.2 document exactly as the
 * daemon produced it.
 *
 * --local runs the same request serially in-process instead — no
 * daemon, no workers, no cache. That is the reference execution the
 * sharded service is compared against in CI
 * (ci/check_sweep_equiv.py), and a convenient one-shot mode.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/serve/client.h"
#include "src/serve/json.h"
#include "src/serve/sweep_request.h"
#include "src/sim/log.h"

namespace
{

void
printUsage(std::FILE *out)
{
    std::fprintf(
        out,
        "usage: bauvm_submit --socket PATH --request FILE [options]\n"
        "       bauvm_submit --local --request FILE [options]\n"
        "  --socket PATH   daemon socket (see bauvm_sweepd)\n"
        "  --request FILE  bauvm.sweep-request/1 JSON ('-' = stdin)\n"
        "  --json PATH     write the merged sweep JSON here "
        "('-' = stdout, default)\n"
        "  --local         run the request serially in-process "
        "instead of submitting\n"
        "  --wait S        wait up to S seconds for the daemon "
        "socket to accept\n"
        "  --quiet         no per-cell progress on stderr\n");
}

bool
writeDoc(const std::string &path, const std::string &doc)
{
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        bauvm::warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    out << doc << "\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string request_path;
    std::string json_path = "-";
    bool local = false;
    bool quiet = false;
    double wait_s = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> std::string {
            if (i + 1 >= argc)
                bauvm::fatal("missing value for %s", what);
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next("--socket");
        } else if (arg == "--request") {
            request_path = next("--request");
        } else if (arg == "--json") {
            json_path = next("--json");
        } else if (arg == "--local") {
            local = true;
        } else if (arg == "--wait") {
            wait_s = std::strtod(next("--wait").c_str(), nullptr);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            return 0;
        } else {
            printUsage(stderr);
            bauvm::fatal("unknown argument '%s'", arg.c_str());
        }
    }
    if (request_path.empty() || (socket_path.empty() && !local)) {
        printUsage(stderr);
        bauvm::fatal(local ? "--request is required"
                           : "--socket and --request are required");
    }

    std::string request_text;
    if (request_path == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        request_text = buf.str();
    } else {
        std::ifstream in(request_path);
        if (!in)
            bauvm::fatal("cannot read request file '%s'",
                         request_path.c_str());
        std::ostringstream buf;
        buf << in.rdbuf();
        request_text = buf.str();
    }

    if (local) {
        bauvm::JsonValue doc;
        std::string error;
        if (!bauvm::JsonValue::parse(request_text, &doc, &error))
            bauvm::fatal("malformed request JSON: %s", error.c_str());
        bauvm::SweepRequest req;
        if (!bauvm::parseSweepRequest(doc, &req, &error))
            bauvm::fatal("%s", error.c_str());
        const bauvm::SweepResult result =
            bauvm::runRequestSerial(req, /*verbose=*/!quiet);
        if (!writeDoc(json_path, result.toJson(/*pretty=*/false)))
            return 1;
        return result.failedCells() == 0 ? 0 : 2;
    }

    if (wait_s > 0.0 &&
        !bauvm::waitForService(socket_path, wait_s))
        bauvm::fatal("daemon socket '%s' not accepting after %.1fs",
                     socket_path.c_str(), wait_s);

    const bauvm::SweepSubmitResult result = bauvm::submitSweep(
        socket_path, request_text,
        [&](const bauvm::JsonValue &event) {
            if (quiet || event.getString("op") != "cell")
                return;
            std::fprintf(
                stderr, "  [%llu/%llu] %s/%s%s%s %s%s\n",
                static_cast<unsigned long long>(
                    event.getU64("done")),
                static_cast<unsigned long long>(
                    event.getU64("total")),
                event.getString("workload").c_str(),
                event.getString("policy").c_str(),
                event.getString("variant").empty() ? "" : " ",
                event.getString("variant").c_str(),
                event.getBool("ok") ? "ok" : "FAILED",
                event.getBool("cached") ? " (cached)" : "");
        });
    if (!result.ok)
        bauvm::fatal("submit failed: %s", result.error.c_str());
    if (!quiet)
        std::fprintf(stderr,
                     "submit: %llu cells (%llu cached, %llu failed, "
                     "%llu timed out)\n",
                     static_cast<unsigned long long>(result.cells),
                     static_cast<unsigned long long>(result.cached),
                     static_cast<unsigned long long>(result.failed),
                     static_cast<unsigned long long>(
                         result.timed_out));
    if (!writeDoc(json_path, result.sweep_json))
        return 1;
    return result.failed == 0 ? 0 : 2;
}
