/**
 * @file
 * Ablation of UVM runtime knobs on BFS-TTC and PR: tree prefetcher
 * on/off, fault-buffer capacity, interrupt dispatch latency, and
 * eviction granularity (64 KB pages vs 2 MB root chunks).
 *
 * All four knob groups run as one SweepRunner matrix (the knob setting
 * is a config variant labelled "group/setting"), so every cell
 * parallelizes across --jobs workers and a single --json PATH export
 * carries the whole ablation.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/runner/sweep_runner.h"

namespace
{

using namespace bauvm;

struct KnobGroup {
    std::string title;
    std::vector<ConfigVariant> variants; //!< labels without prefix
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    const std::vector<KnobGroup> groups = {
        {"Ablation: prefetch policy",
         {{"tree prefetcher (baseline)", nullptr},
          {"sequential next-4",
           [](SimConfig &c) { c.uvm.sequential_prefetch_pages = 4; }},
          {"prefetch off",
           [](SimConfig &c) { c.uvm.prefetch_enabled = false; }}}},
        {"Ablation: fault buffer capacity",
         {{"1024 entries (Table 1)", nullptr},
          {"256 entries",
           [](SimConfig &c) { c.uvm.fault_buffer_entries = 256; }},
          {"64 entries",
           [](SimConfig &c) { c.uvm.fault_buffer_entries = 64; }}}},
        {"Ablation: interrupt dispatch latency",
         {{"2us (default)", nullptr},
          {"0us",
           [](SimConfig &c) { c.uvm.interrupt_latency_us = 0.0; }},
          {"10us",
           [](SimConfig &c) { c.uvm.interrupt_latency_us = 10.0; }}}},
        {"Ablation: eviction granularity",
         {{"64KB pages (default)", nullptr},
          {"2MB root chunks",
           [](SimConfig &c) { c.uvm.root_chunk_pages = 32; }}}},
    };

    SweepSpec spec;
    spec.bench = "ablation_uvm_knobs";
    spec.workloads = {"BFS-TTC", "PR"};
    // The knobs ablate the BASELINE configuration (applyPolicy is a
    // no-op for it); the variant carries the knob mutation.
    spec.policies = {Policy::Baseline};
    for (const auto &group : groups) {
        for (const auto &v : group.variants)
            spec.variants.push_back(
                {group.title + "/" + v.label, v.mutate});
    }
    spec.opt = opt;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    std::fprintf(stderr,
                 "ablation: %zu-cell matrix on %zu worker(s) in %.2fs\n",
                 sweep.cells.size(), sweep.jobs, sweep.elapsed_s);
    if (!opt.json_path.empty())
        sweep.writeJson(opt.json_path);

    for (const auto &group : groups) {
        printBanner(group.title);
        Table t({"variant", "BFS-TTC cycles", "PR cycles",
                 "BFS-TTC batches", "PR batches"});
        for (const auto &v : group.variants) {
            const std::string label = group.title + "/" + v.label;
            const CellOutcome *bfs =
                sweep.find("BFS-TTC", Policy::Baseline, label);
            const CellOutcome *pr =
                sweep.find("PR", Policy::Baseline, label);
            if (!bfs || !bfs->ok || !pr || !pr->ok) {
                warn("ablation: skipping '%s' (cell failed)",
                     label.c_str());
                continue;
            }
            t.addRow({v.label, std::to_string(bfs->result.cycles),
                      std::to_string(pr->result.cycles),
                      std::to_string(bfs->result.batches),
                      std::to_string(pr->result.batches)});
        }
        t.emit(opt.csv);
    }
    return 0;
}
