/**
 * @file
 * Ablation of UVM runtime knobs on BFS-TTC and PR: tree prefetcher
 * on/off, fault-buffer capacity, interrupt dispatch latency, and
 * eviction granularity (64 KB pages vs 2 MB root chunks).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"

namespace
{

using namespace bauvm;

void
sweep(const char *title, const BenchOptions &opt,
      const std::vector<std::pair<std::string,
                                  std::function<void(SimConfig *)>>>
          &variants)
{
    printBanner(title);
    Table t({"variant", "BFS-TTC cycles", "PR cycles",
             "BFS-TTC batches", "PR batches"});
    for (const auto &[label, mutate] : variants) {
        std::fprintf(stderr, "  %s ...\n", label.c_str());
        SimConfig config = paperConfig(opt.ratio, opt.seed);
        mutate(&config);
        const RunResult bfs =
            runWorkload(config, "BFS-TTC", opt.scale);
        const RunResult pr = runWorkload(config, "PR", opt.scale);
        t.addRow({label, std::to_string(bfs.cycles),
                  std::to_string(pr.cycles),
                  std::to_string(bfs.batches),
                  std::to_string(pr.batches)});
    }
    t.emit(opt.csv);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    sweep("Ablation: prefetch policy", opt,
          {{"tree prefetcher (baseline)", [](SimConfig *) {}},
           {"sequential next-4",
            [](SimConfig *c) {
                c->uvm.sequential_prefetch_pages = 4;
            }},
           {"prefetch off", [](SimConfig *c) {
                c->uvm.prefetch_enabled = false;
            }}});

    sweep("Ablation: fault buffer capacity", opt,
          {{"1024 entries (Table 1)", [](SimConfig *) {}},
           {"256 entries",
            [](SimConfig *c) { c->uvm.fault_buffer_entries = 256; }},
           {"64 entries",
            [](SimConfig *c) { c->uvm.fault_buffer_entries = 64; }}});

    sweep("Ablation: interrupt dispatch latency", opt,
          {{"2us (default)", [](SimConfig *) {}},
           {"0us",
            [](SimConfig *c) { c->uvm.interrupt_latency_us = 0.0; }},
           {"10us",
            [](SimConfig *c) { c->uvm.interrupt_latency_us = 10.0; }}});

    sweep("Ablation: eviction granularity", opt,
          {{"64KB pages (default)", [](SimConfig *) {}},
           {"2MB root chunks", [](SimConfig *c) {
                c->uvm.root_chunk_pages = 32;
            }}});
    return 0;
}
