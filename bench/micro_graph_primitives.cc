/**
 * @file
 * google-benchmark microbenchmarks of graph construction: the
 * external-memory streamed CSR builder (src/graph/stream) against the
 * in-core build it is differential-tested bit-identical to
 * (generateRmat + relabelByDegree). bench/perf_smoke pairs the two
 * shapes the same way it pairs the event-kernel and memory-path
 * rewrites, so the streaming overhead trajectory lands in the
 * BENCH_sim_throughput.json artifact (tracked non-gating by
 * ci/check_perf.py).
 *
 * The benchmark scale is deliberately small (Tiny-tier edges): the
 * point is the relative cost of streamed regeneration + partition
 * scatter vs one in-core sort, which is scale-stable, not a Huge-tier
 * soak on a shared CI runner.
 */

#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/graph/generator.h"
#include "src/graph/stream/csr_stream_builder.h"

namespace
{

using namespace bauvm;

RmatParams
benchParams()
{
    RmatParams p;
    p.num_vertices = 1 << 13;
    p.num_edges = 1 << 16;
    p.seed = 42;
    return p;
}

void
BM_GraphStreamCsrBuild(benchmark::State &state)
{
    const RmatParams p = benchParams();
    StreamCsrOptions opt;
    // A scratch budget far below the column bytes forces the real
    // multi-partition path, not a degenerate single pass.
    opt.scratch_bytes = 64 << 10;
    std::uint64_t edges = 0;
    for (auto _ : state) {
        const CsrGraph g = buildCsrStreamed(p, opt);
        edges = g.numEdges();
        benchmark::DoNotOptimize(edges);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_GraphStreamCsrBuild)->Unit(benchmark::kMillisecond);

void
BM_LegacyGraphStreamCsrBuild(benchmark::State &state)
{
    const RmatParams p = benchParams();
    std::uint64_t edges = 0;
    for (auto _ : state) {
        const CsrGraph g = relabelByDegree(generateRmat(p));
        edges = g.numEdges();
        benchmark::DoNotOptimize(edges);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_LegacyGraphStreamCsrBuild)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
