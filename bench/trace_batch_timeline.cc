/**
 * @file
 * Batch timeline replay (the paper's Fig 4 / Fig 10 story, told from
 * the trace): runs one small irregular workload under BASELINE, TO and
 * TO+UE with tracing enabled, writes a Chrome trace per policy, and
 * renders an ASCII per-batch timeline of the two PCIe channels.
 *
 * The point the output proves: under the baseline the device-to-host
 * (eviction) and host-to-device (migration) channels alternate —
 * eviction blocks the next migration — while under TO+UE the D2H
 * eviction stream overlaps the inbound migrations, so the two channels
 * are busy *simultaneously* (nonzero overlap cycles).
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/runner/job.h"
#include "src/trace/trace_export.h"
#include "src/workloads/workload_registry.h"

namespace
{

using namespace bauvm;

struct Span {
    Cycle begin = 0;
    Cycle end = 0;
};

/** Busy spans of one PCIe channel, from the trace, sorted by begin. */
std::vector<Span>
channelSpans(const TraceSink &sink, TraceTrack track)
{
    std::vector<Span> spans;
    sink.forEach([&](const TraceRecord &r) {
        if (r.track != track || r.begin == r.end)
            return;
        const TraceEventType t = r.eventType();
        if (t == TraceEventType::Migration ||
            t == TraceEventType::Eviction) {
            spans.push_back({r.begin, r.end});
        }
    });
    std::sort(spans.begin(), spans.end(),
              [](const Span &a, const Span &b) {
                  return a.begin < b.begin;
              });
    return spans;
}

std::uint64_t
totalBusy(const std::vector<Span> &spans)
{
    std::uint64_t busy = 0;
    for (const Span &s : spans)
        busy += s.end - s.begin;
    return busy;
}

/** Cycles during which both (non-overlapping, sorted) span sets are
 *  simultaneously busy. */
std::uint64_t
overlapCycles(const std::vector<Span> &a, const std::vector<Span> &b)
{
    std::uint64_t overlap = 0;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const Cycle lo = std::max(a[i].begin, b[j].begin);
        const Cycle hi = std::min(a[i].end, b[j].end);
        if (lo < hi)
            overlap += hi - lo;
        if (a[i].end < b[j].end)
            ++i;
        else
            ++j;
    }
    return overlap;
}

/** Busy cycles of @p spans clipped to [lo, hi). */
std::uint64_t
busyWithin(const std::vector<Span> &spans, Cycle lo, Cycle hi)
{
    std::uint64_t busy = 0;
    for (const Span &s : spans) {
        const Cycle b = std::max(s.begin, lo);
        const Cycle e = std::min(s.end, hi);
        if (b < e)
            busy += e - b;
    }
    return busy;
}

/** 40-column bar of one batch window: '#' where the channel is busy
 *  for the majority of the column's cycles. */
std::string
bar(const std::vector<Span> &spans, Cycle lo, Cycle hi)
{
    constexpr int kCols = 40;
    std::string out(kCols, '.');
    if (hi <= lo)
        return out;
    const double step =
        static_cast<double>(hi - lo) / static_cast<double>(kCols);
    for (int c = 0; c < kCols; ++c) {
        const auto clo =
            lo + static_cast<Cycle>(step * static_cast<double>(c));
        const auto chi =
            lo + static_cast<Cycle>(step * static_cast<double>(c + 1));
        if (chi <= clo)
            continue;
        const std::uint64_t busy = busyWithin(spans, clo, chi);
        if (busy * 2 >= chi - clo)
            out[static_cast<std::size_t>(c)] = '#';
    }
    return out;
}

struct PolicyTimeline {
    Policy policy = Policy::Baseline;
    RunResult result;
    std::vector<Span> h2d;
    std::vector<Span> d2h;
    std::uint64_t overlap = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bauvm;
    BenchOptions opt = parseBenchArgs(argc, argv);
    if (opt.trace_dir.empty())
        opt.trace_dir = "traces";
    std::filesystem::create_directories(opt.trace_dir);

    const std::string workload = "BFS-TWC";
    const std::vector<Policy> policies = {Policy::Baseline, Policy::To,
                                          Policy::ToUe};

    printBanner("Batch timeline: PCIe channel concurrency per policy "
                "(workload " + workload + ")");

    std::vector<PolicyTimeline> lines;
    for (Policy policy : policies) {
        std::fprintf(stderr, "  running %s ...\n",
                     policyName(policy).c_str());
        SimConfig config = paperConfig(
            opt.ratio, deriveWorkloadSeed(opt.seed, workload));
        config = applyPolicy(config, policy);
        config.trace.enabled = true;

        auto wl = WorkloadRegistry::instance().create(workload);
        GpuUvmSystem system(config);

        PolicyTimeline tl;
        tl.policy = policy;
        tl.result = system.run(*wl, opt.scale);
        tl.h2d = channelSpans(*system.trace(), kTraceTrackPcieH2d);
        tl.d2h = channelSpans(*system.trace(), kTraceTrackPcieD2h);
        tl.overlap = overlapCycles(tl.h2d, tl.d2h);

        TraceMeta meta;
        meta.bench = "trace_batch_timeline";
        meta.workload = workload;
        meta.policy = policyName(policy);
        meta.scale = scaleName(opt.scale);
        meta.seed = config.seed;
        meta.ratio = opt.ratio;
        std::string path = opt.trace_dir + "/trace_batch_timeline__" +
                           workload + "__" + policyName(policy) +
                           ".trace.json";
        for (char &c : path) {
            if (c == ' ')
                c = '-';
        }
        if (writeChromeTrace(*system.trace(), meta, path))
            std::fprintf(stderr, "  wrote %s\n", path.c_str());

        // Per-batch two-channel timeline for the first evicting
        // batches (Fig 4 is exactly this picture for the baseline;
        // Fig 10 for UE).
        constexpr std::size_t kShow = 6;
        std::printf("\n%s: first %zu batches with eviction traffic\n",
                    policyName(policy).c_str(), kShow);
        std::size_t shown = 0;
        for (const BatchRecord &b : tl.result.batch_records) {
            if (shown >= kShow)
                break;
            if (busyWithin(tl.d2h, b.begin, b.end) == 0)
                continue;
            ++shown;
            std::printf("  [%9llu,%9llu) H2D %s\n",
                        static_cast<unsigned long long>(b.begin),
                        static_cast<unsigned long long>(b.end),
                        bar(tl.h2d, b.begin, b.end).c_str());
            std::printf("  %21s D2H %s\n", "",
                        bar(tl.d2h, b.begin, b.end).c_str());
        }
        if (shown == 0)
            std::printf("  (no batch saw eviction traffic)\n");
        lines.push_back(std::move(tl));
    }

    std::printf("\n");
    Table t({"policy", "cycles", "h2d busy", "d2h busy",
             "overlap cyc", "overlap/d2h"});
    for (const PolicyTimeline &tl : lines) {
        const std::uint64_t d2h = totalBusy(tl.d2h);
        const double frac =
            d2h == 0 ? 0.0
                     : static_cast<double>(tl.overlap) /
                           static_cast<double>(d2h);
        t.addRow({policyName(tl.policy),
                  std::to_string(tl.result.cycles),
                  std::to_string(totalBusy(tl.h2d)),
                  std::to_string(d2h), std::to_string(tl.overlap),
                  Table::num(frac, 3)});
    }
    t.emit(opt.csv);

    const std::uint64_t base_overlap = lines.front().overlap;
    const std::uint64_t toue_overlap = lines.back().overlap;
    std::printf("\nbaseline serializes evict->migrate (overlap %llu "
                "cycles); TO+UE pipelines both directions (overlap "
                "%llu cycles)\n",
                static_cast<unsigned long long>(base_overlap),
                static_cast<unsigned long long>(toue_overlap));
    return toue_overlap > base_overlap ? 0 : 1;
}
