/**
 * @file
 * Frontier-suite evaluation matrix: the fig11-style speedup table over
 * the frontier-phase workload family (direction-optimizing BFS, label
 * propagation CC, triangle counting, k-truss) whose per-kernel access
 * patterns shift with the frontier instead of repeating a fixed
 * iteration shape — the regime batch-aware migration is built for.
 *
 * Defaults to every registered frontier workload; --workloads A,B,C
 * restricts the suite (CI smoke runs BFS-HYB,CC). The (workload x
 * policy) matrix runs on the parallel SweepRunner, so stdout is
 * byte-identical for any --jobs value; pass --json PATH for the
 * structured export and --audit for per-cell reference validation.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/runner/sweep_runner.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    SweepSpec spec;
    spec.bench = "frontier_suite";
    spec.workloads = opt.workloadsOr(
        WorkloadRegistry::instance().enumerate(
            WorkloadKind::Frontier));
    spec.policies = allPolicies();
    spec.opt = opt;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    std::fprintf(
        stderr, "frontier_suite: %zu-cell matrix on %zu worker(s) in %.2fs\n",
        sweep.cells.size(), sweep.jobs, sweep.elapsed_s);
    if (!opt.json_path.empty())
        sweep.writeJson(opt.json_path);

    printBanner("Frontier suite: speedup over BASELINE");
    std::vector<std::string> headers = {"workload"};
    for (Policy p : spec.policies)
        headers.push_back(policyName(p));
    Table t(headers);

    std::map<Policy, std::vector<double>> speedups;
    for (const auto &w : spec.workloads) {
        const CellOutcome *base = sweep.find(w, Policy::Baseline);
        if (!base || !base->ok) {
            warn("frontier_suite: skipping %s (baseline cell failed)",
                 w.c_str());
            continue;
        }
        const double base_cycles =
            static_cast<double>(base->result.cycles);
        std::vector<std::string> row = {w};
        for (Policy p : spec.policies) {
            const CellOutcome *cell = sweep.find(w, p);
            if (!cell || !cell->ok) {
                row.push_back("FAIL");
                continue;
            }
            const double s =
                base_cycles / static_cast<double>(cell->result.cycles);
            speedups[p].push_back(s);
            row.push_back(Table::num(s, 2));
        }
        t.addRow(row);
    }
    std::vector<std::string> gmean = {"GEOMEAN"};
    for (Policy p : spec.policies)
        gmean.push_back(Table::num(geomean(speedups[p]), 2));
    t.addRow(gmean);
    t.emit(opt.csv);
    return 0;
}
