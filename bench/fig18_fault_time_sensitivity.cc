/**
 * @file
 * Figure 18: sensitivity of the TO+UE speedup to the GPU-runtime fault
 * handling time (20-50 us). Paper: the speedup grows with the handling
 * time, since larger batches amortize a bigger fixed cost.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    const std::vector<std::string> workloads = {
        "BFS-TTC", "BFS-TWC", "PR", "SSSP-TWC", "GC-DTC",
    };

    printBanner("Figure 18: TO+UE speedup vs GPU runtime fault "
                "handling time");
    Table t({"fault handling time (us)", "speedup of TO+UE"});

    for (double us : {20.0, 30.0, 40.0, 50.0}) {
        std::vector<double> spd;
        for (const auto &w : workloads) {
            std::fprintf(stderr, "  %gus %s ...\n", us, w.c_str());
            SimConfig base = paperConfig(opt.ratio, opt.seed);
            base.uvm.fault_handling_us = us;
            const SimConfig toue = applyPolicy(base, Policy::ToUe);
            const RunResult rb =
                runWorkload(applyPolicy(base, Policy::Baseline), w,
                            opt.scale);
            const RunResult rt = runWorkload(toue, w, opt.scale);
            spd.push_back(static_cast<double>(rb.cycles) /
                          static_cast<double>(rt.cycles));
        }
        t.addRow({Table::num(us, 0), Table::num(amean(spd), 2)});
    }
    t.emit(opt.csv);

    std::printf("\npaper: speedup grows from 2.0x at 20us toward ~2.5x "
                "at 50us\n");
    return 0;
}
