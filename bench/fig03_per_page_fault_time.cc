/**
 * @file
 * Figure 3: per-page fault handling time (us) vs batch size, for BFS.
 *
 * The paper measured this on a Titan Xp with the Visual Profiler; here
 * the same two quantities come from the simulator's batch records:
 * per-page time = batch processing time / pages in the batch. The
 * reproduction target is the shape — amortization makes per-page cost
 * fall steeply as batches grow.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    std::fprintf(stderr, "  running BFS-TTC / BASELINE ...\n");
    const RunResult r = runCell("BFS-TTC", Policy::Baseline, opt);

    printBanner("Figure 3: per-page fault handling time vs batch size "
                "(BFS)");

    // Bucket batches by size (pages) and average the per-page time.
    std::map<std::uint32_t, std::pair<double, std::uint32_t>> buckets;
    for (const auto &b : r.batch_records) {
        if (b.totalPages() == 0)
            continue;
        const double per_page_us =
            static_cast<double>(b.processingTime()) /
            static_cast<double>(b.totalPages()) /
            static_cast<double>(kCyclesPerUs);
        // Bucket width: 8 pages (0.5 MB at 64 KB pages).
        const std::uint32_t bucket = b.totalPages() / 8 * 8;
        buckets[bucket].first += per_page_us;
        buckets[bucket].second += 1;
    }

    Table t({"batch size (pages)", "batch size (MB)",
             "per-page fault handling time (us)", "batches"});
    for (const auto &[bucket, acc] : buckets) {
        t.addRow({std::to_string(bucket),
                  Table::num(bucket * 64.0 / 1024.0, 2),
                  Table::num(acc.first / acc.second, 2),
                  std::to_string(acc.second)});
    }
    t.emit(opt.csv);

    std::printf("\ntotal batches: %llu, avg faults/batch: %.1f\n",
                static_cast<unsigned long long>(r.batches),
                r.avg_batch_pages);
    return 0;
}
