/**
 * @file
 * google-benchmark microbenchmarks of the memory/UVM metadata data
 * path: page-table churn, the fault-buffer -> memory-manager fault
 * handling loop, chunked eviction churn and batch prefetch analysis.
 *
 * Each shape runs against both the production dense-PageMetaTable
 * implementation and the retained hash-map reference
 * (src/uvm/legacy_mem_path.h) so bench/perf_smoke can report the
 * speedup of the rewrite, exactly like the EventQueue shapes in
 * micro_sim_primitives. The shapes mirror real simulator traffic:
 *  - MemTranslate:     map/frameOf/unmap churn — the page-table ops
 *                      behind every walker miss and migration;
 *  - MemFaultPath:     insert faults, drain a batch, evict-to-fit and
 *                      commit — the steady-state per-batch loop and
 *                      the acceptance shape for the rewrite;
 *  - MemEvictChurn:    commit/evict under capacity pressure with
 *                      32-page root chunks — stresses the intrusive
 *                      chunk LRU and per-chunk page FIFOs;
 *  - MemPrefetchBatch: one tree-prefetch analysis over a dense fault
 *                      batch — persistent scratch vs per-batch maps.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/sim/config.h"
#include "src/sim/types.h"
#include "src/uvm/fault_buffer.h"
#include "src/uvm/gpu_memory_manager.h"
#ifdef BAUVM_LEGACY_DIFFERENTIAL
#include "src/uvm/legacy_mem_path.h"
#endif // BAUVM_LEGACY_DIFFERENTIAL
#include "src/uvm/prefetcher.h"

namespace
{

using namespace bauvm;

// ------------------------------------------------------- MemTranslate

template <typename PT>
void
memTranslate(benchmark::State &state)
{
    constexpr PageNum kPages = 1024;
    PT pt;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (PageNum p = 0; p < kPages; ++p)
            pt.map(p, p * 2 + 1);
        // Scattered residency/frame probes (a walker's view).
        std::uint64_t x = 88172645463325252ull;
        for (int i = 0; i < 4096; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            const PageNum vpn = x % (kPages * 2);
            if (pt.isResident(vpn))
                sink += pt.frameOf(vpn);
        }
        for (PageNum p = 0; p < kPages; ++p)
            pt.unmap(p);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * (kPages * 2 + 4096));
}

// ------------------------------------------------------- MemFaultPath

void
drainBatch(FaultBuffer &fb, std::vector<FaultRecord> &out)
{
    fb.drainInto(out);
}

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
drainBatch(LegacyFaultBuffer &fb, std::vector<FaultRecord> &out)
{
    out = fb.drain();
}
#endif // BAUVM_LEGACY_DIFFERENTIAL

/**
 * The per-batch fault handling loop: insert a buffer's worth of faults
 * (with duplicates), drain the batch, then evict-to-fit and commit
 * every drained page. The footprint (4x capacity) keeps the manager at
 * capacity so every batch pays the full evict+commit path.
 */
template <typename Manager, typename Buffer>
void
memFaultPath(benchmark::State &state, Manager &mgr, Buffer &fb)
{
    constexpr PageNum kFootprint = 2048;
    constexpr int kBatchFaults = 256;
    std::vector<FaultRecord> batch;
    PageNum next = 0;
    Cycle now = 0;
    for (auto _ : state) {
        for (int i = 0; i < kBatchFaults; ++i) {
            const PageNum vpn = (next + i * 3) % kFootprint;
            fb.insert(vpn, now + i);
            if ((i & 7) == 0) // warp-duplicate faults on the same page
                fb.insert(vpn, now + i);
        }
        next = (next + kBatchFaults * 3) % kFootprint;
        drainBatch(fb, batch);
        for (const FaultRecord &rec : batch) {
            if (mgr.isResident(rec.vpn))
                continue;
            while (!mgr.hasFreeFrame()) {
                PageNum victim = 0;
                if (!mgr.beginEviction(&victim, now))
                    break;
                mgr.completeEviction(victim);
            }
            mgr.reserveFrame();
            mgr.commitPage(rec.vpn, now);
        }
        now += 1000;
        benchmark::DoNotOptimize(batch.size());
    }
    state.SetItemsProcessed(state.iterations() * kBatchFaults);
}

// ------------------------------------------------------- MemEvictChurn

/**
 * Sequential commits sweeping 4x capacity with 32-page root chunks:
 * every commit past warm-up evicts first, exercising chunk LRU unlink/
 * append and the per-chunk page FIFO at chunk granularity.
 */
template <typename Manager>
void
memEvictChurn(benchmark::State &state, Manager &mgr)
{
    constexpr PageNum kFootprint = 4096;
    PageNum next = 0;
    Cycle now = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i) {
            const PageNum vpn = next;
            next = (next + 1) % kFootprint;
            if (mgr.isResident(vpn))
                continue;
            while (!mgr.hasFreeFrame()) {
                PageNum victim = 0;
                if (!mgr.beginEviction(&victim, now))
                    break;
                mgr.completeEviction(victim);
            }
            mgr.reserveFrame();
            mgr.commitPage(vpn, now);
            ++now;
        }
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

// ---------------------------------------------------- MemPrefetchBatch

/**
 * One tree analysis per iteration over a dense fault batch: 18 of 32
 * pages faulted in each of 16 VA blocks, so every block crosses the
 * 50% density threshold and fills.
 */
std::vector<PageNum>
prefetchFaultBatch(std::uint32_t pages_per_block)
{
    std::vector<PageNum> faulted;
    for (PageNum block = 0; block < 16; ++block)
        for (PageNum i = 0; i < 18; ++i)
            faulted.push_back(block * pages_per_block + i);
    return faulted;
}

void
BM_MemPrefetchBatch(benchmark::State &state)
{
    UvmConfig config;
    TreePrefetcher pf(
        config, [](PageNum) { return false; },
        [](PageNum vpn) { return vpn < (1u << 16); });
    const auto faulted = prefetchFaultBatch(pf.pagesPerBlock());
    std::vector<PageNum> out;
    for (auto _ : state) {
        pf.computePrefetchesInto(faulted, &out);
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(state.iterations() * faulted.size());
}
BENCHMARK(BM_MemPrefetchBatch);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyMemPrefetchBatch(benchmark::State &state)
{
    UvmConfig config;
    LegacyTreePrefetcher pf(
        config, [](PageNum) { return false; },
        [](PageNum vpn) { return vpn < (1u << 16); });
    const auto faulted = prefetchFaultBatch(
        static_cast<std::uint32_t>(config.va_block_bytes /
                                   config.page_bytes));
    for (auto _ : state) {
        auto out = pf.computePrefetches(faulted);
        benchmark::DoNotOptimize(out.size());
    }
    state.SetItemsProcessed(state.iterations() * faulted.size());
}
BENCHMARK(BM_LegacyMemPrefetchBatch);
#endif // BAUVM_LEGACY_DIFFERENTIAL

// ------------------------------------------------------- registration

void
BM_MemTranslate(benchmark::State &state)
{
    memTranslate<PageTable>(state);
}
BENCHMARK(BM_MemTranslate);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyMemTranslate(benchmark::State &state)
{
    memTranslate<LegacyPageTable>(state);
}
BENCHMARK(BM_LegacyMemTranslate);
#endif // BAUVM_LEGACY_DIFFERENTIAL

void
BM_MemFaultPath(benchmark::State &state)
{
    UvmConfig config;
    GpuMemoryManager mgr(config, 512);
    FaultBuffer fb(256, mgr.pageTable().meta());
    memFaultPath(state, mgr, fb);
}
BENCHMARK(BM_MemFaultPath);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyMemFaultPath(benchmark::State &state)
{
    UvmConfig config;
    LegacyGpuMemoryManager mgr(config, 512);
    LegacyFaultBuffer fb(256);
    memFaultPath(state, mgr, fb);
}
BENCHMARK(BM_LegacyMemFaultPath);
#endif // BAUVM_LEGACY_DIFFERENTIAL

void
BM_MemEvictChurn(benchmark::State &state)
{
    UvmConfig config;
    config.root_chunk_pages = 32;
    GpuMemoryManager mgr(config, 1024);
    memEvictChurn(state, mgr);
}
BENCHMARK(BM_MemEvictChurn);

#ifdef BAUVM_LEGACY_DIFFERENTIAL
void
BM_LegacyMemEvictChurn(benchmark::State &state)
{
    UvmConfig config;
    config.root_chunk_pages = 32;
    LegacyGpuMemoryManager mgr(config, 1024);
    memEvictChurn(state, mgr);
}
BENCHMARK(BM_LegacyMemEvictChurn);
#endif // BAUVM_LEGACY_DIFFERENTIAL

} // namespace

BENCHMARK_MAIN();
