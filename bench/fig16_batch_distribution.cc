/**
 * @file
 * Figure 16: distribution of batch sizes (baseline vs thread
 * oversubscription) overlaid with the efficiency curve (reciprocal of
 * the average per-page handling time per size bucket). Bigger batches
 * appear under TO, and efficiency rises with batch size because the
 * GPU-runtime fault handling time is amortized.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

namespace
{

using namespace bauvm;

struct Dist {
    std::vector<std::uint64_t> counts;
    std::vector<double> per_page_sum;
    std::uint64_t total = 0;
};

Dist
distribution(const std::vector<std::string> &workloads, Policy policy,
             const BenchOptions &opt, std::size_t buckets,
             std::uint32_t bucket_pages)
{
    Dist d;
    d.counts.assign(buckets, 0);
    d.per_page_sum.assign(buckets, 0.0);
    for (const auto &w : workloads) {
        std::fprintf(stderr, "  running %s / %s ...\n", w.c_str(),
                     policyName(policy).c_str());
        const RunResult r = runCell(w, policy, opt);
        for (const auto &b : r.batch_records) {
            if (b.totalPages() == 0)
                continue;
            std::size_t idx = b.totalPages() / bucket_pages;
            if (idx >= buckets)
                idx = buckets - 1;
            ++d.counts[idx];
            d.per_page_sum[idx] +=
                static_cast<double>(b.processingTime()) /
                static_cast<double>(b.totalPages());
            ++d.total;
        }
    }
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    constexpr std::size_t kBuckets = 13;
    constexpr std::uint32_t kBucketPages = 8; // 0.5 MB per bucket

    const auto &workloads = WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular);
    const Dist base = distribution(workloads, Policy::Baseline, opt,
                                   kBuckets, kBucketPages);
    const Dist to =
        distribution(workloads, Policy::To, opt, kBuckets, kBucketPages);

    printBanner("Figure 16: batch size distribution and efficiency");
    Table t({"batch size (MB)", "BASELINE", "TO", "efficiency"});

    // Efficiency = 1 / avg per-page time, normalized so the largest
    // bucket with data is 100%.
    std::vector<double> eff(kBuckets, 0.0);
    double eff_max = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        const auto n = base.counts[i] + to.counts[i];
        if (n == 0)
            continue;
        const double per_page =
            (base.per_page_sum[i] + to.per_page_sum[i]) /
            static_cast<double>(n);
        eff[i] = 1.0 / per_page;
        eff_max = std::max(eff_max, eff[i]);
    }

    for (std::size_t i = 0; i < kBuckets; ++i) {
        const double mb = (i + 1) * kBucketPages * 64.0 / 1024.0;
        const double fb =
            base.total ? 100.0 * base.counts[i] / base.total : 0.0;
        const double ft =
            to.total ? 100.0 * to.counts[i] / to.total : 0.0;
        const double fe = eff_max > 0.0 ? 100.0 * eff[i] / eff_max : 0.0;
        t.addRow({Table::num(mb, 1), Table::num(fb, 1) + "%",
                  Table::num(ft, 1) + "%", Table::num(fe, 1) + "%"});
    }
    t.emit(opt.csv);
    return 0;
}
