/**
 * @file
 * Section 6.5 ablation: sensitivity of TO+UE to the context-switch
 * cost — global-memory save/restore (our default) vs the close-to-
 * ideal infinite-shared-memory cost (zero in our model, <1 us in the
 * paper's Eq.). Paper: overall execution time is insensitive, because
 * the switch cost is dwarfed by batch processing times.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/workloads/workload_registry.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    printBanner("Section 6.5: context switch cost sensitivity (TO+UE)");
    Table t({"workload", "global-memory switch", "ideal switch",
             "ideal/global", "switches"});

    std::vector<double> rel;
    for (const auto &name : WorkloadRegistry::instance().enumerate(WorkloadKind::Irregular)) {
        std::fprintf(stderr, "  running %s ...\n", name.c_str());
        SimConfig global_cfg =
            applyPolicy(paperConfig(opt.ratio, opt.seed), Policy::ToUe);
        SimConfig ideal_cfg = global_cfg;
        ideal_cfg.to.ideal_ctx_switch = true;

        const RunResult rg =
            runWorkload(global_cfg, name, opt.scale);
        const RunResult ri = runWorkload(ideal_cfg, name, opt.scale);
        const double r = static_cast<double>(rg.cycles) /
                         static_cast<double>(ri.cycles);
        rel.push_back(r);
        t.addRow({name, std::to_string(rg.cycles),
                  std::to_string(ri.cycles), Table::num(r, 3),
                  std::to_string(rg.context_switches)});
    }
    t.addRow({"AVERAGE", "", "", Table::num(amean(rel), 3), ""});
    t.emit(opt.csv);

    std::printf("\npaper: execution time is insensitive to the switch "
                "cost (ratio ~1.0)\n");
    return 0;
}
