/**
 * @file
 * Figure 17: sensitivity to the memory oversubscription ratio
 * (0.1 ... 1.0): relative execution time of the baseline (normalized
 * to ratio 1.0) and the speedup of unobtrusive eviction at each ratio.
 * Paper: UE is ineffective when everything fits (1.0) and reaches
 * 1.63x at ratio 0.1.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    BenchOptions opt = parseBenchArgs(argc, argv);

    // A representative subset keeps the sweep tractable (10 ratios x 2
    // policies x workloads).
    const std::vector<std::string> workloads = {
        "BFS-TTC", "BFS-TWC", "PR", "SSSP-TWC", "GC-DTC",
    };

    printBanner("Figure 17: sensitivity to oversubscription ratio");
    Table t({"ratio", "relative exec time (baseline)", "speedup of UE"});

    std::vector<double> base_at_1(workloads.size(), 0.0);
    for (int step = 10; step >= 1; --step) {
        const double ratio = step / 10.0;
        opt.ratio = ratio;
        std::vector<double> rel, spd;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            std::fprintf(stderr, "  ratio %.1f %s ...\n", ratio,
                         workloads[i].c_str());
            const RunResult rb =
                runCell(workloads[i], Policy::Baseline, opt);
            const RunResult ru = runCell(workloads[i], Policy::Ue, opt);
            if (step == 10)
                base_at_1[i] = static_cast<double>(rb.cycles);
            rel.push_back(static_cast<double>(rb.cycles) /
                          base_at_1[i]);
            spd.push_back(static_cast<double>(rb.cycles) /
                          static_cast<double>(ru.cycles));
        }
        t.addRow({Table::num(ratio, 1), Table::num(amean(rel), 2),
                  Table::num(amean(spd), 2)});
    }
    t.emit(opt.csv);

    std::printf("\npaper: UE speedup 1.0 at ratio 1.0, growing to "
                "1.63x at ratio 0.1\n");
    return 0;
}
