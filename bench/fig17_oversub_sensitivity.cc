/**
 * @file
 * Figure 17: sensitivity to the memory oversubscription ratio
 * (0.1 ... 1.0): relative execution time of the baseline (normalized
 * to ratio 1.0) and the speedup of unobtrusive eviction at each ratio.
 * Paper: UE is ineffective when everything fits (1.0) and reaches
 * 1.63x at ratio 0.1.
 *
 * The footprint axis is derived from each run's *actual* resident
 * bytes (RunResult::footprint_bytes, the exact CSR + scratch size the
 * allocator handed out — streamed Huge builds report the same exact
 * number) and the device capacity the manager really enforced
 * (capacity_pages), not from an in-core allocation estimate. The
 * "eff ratio" column is capacity / resident bytes after page
 * rounding — the honest oversubscription the cells experienced, which
 * is what keeps Huge-scale ratios meaningful.
 *
 * The (ratio x workload x policy) sweep runs as one SweepRunner matrix
 * with the ratio as a config variant, so all cells parallelize across
 * --jobs workers; pass --json PATH for the structured export and
 * --workloads A,B,C (e.g. the @frontier family) to change the suite.
 */

#include <cstdio>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/report.h"
#include "src/runner/sweep_runner.h"

int
main(int argc, char **argv)
{
    using namespace bauvm;
    const BenchOptions opt = parseBenchArgs(argc, argv);

    // A representative subset keeps the sweep tractable (10 ratios x 2
    // policies x workloads); --workloads overrides it.
    SweepSpec spec;
    spec.bench = "fig17_oversub_sensitivity";
    spec.workloads = opt.workloadsOr({
        "BFS-TTC", "BFS-TWC", "PR", "SSSP-TWC", "GC-DTC",
    });
    spec.policies = {Policy::Baseline, Policy::Ue};
    std::vector<double> ratios;
    for (int step = 10; step >= 1; --step) {
        const double ratio = step / 10.0;
        ratios.push_back(ratio);
        spec.variants.push_back(
            {Table::num(ratio, 1),
             [ratio](SimConfig &c) { c.memory_ratio = ratio; }});
    }
    spec.opt = opt;

    const std::uint64_t page_bytes =
        paperConfig(opt.ratio, opt.seed).uvm.page_bytes;

    SweepRunner runner(spec);
    const SweepResult sweep = runner.run();
    std::fprintf(stderr,
                 "fig17: %zu-cell matrix on %zu worker(s) in %.2fs\n",
                 sweep.cells.size(), sweep.jobs, sweep.elapsed_s);
    if (!opt.json_path.empty())
        sweep.writeJson(opt.json_path);

    printBanner("Figure 17: sensitivity to oversubscription ratio");
    Table t({"ratio", "resident MB", "eff ratio",
             "relative exec time (baseline)", "speedup of UE"});

    std::vector<double> base_at_1(spec.workloads.size(), 0.0);
    for (std::size_t r = 0; r < ratios.size(); ++r) {
        const std::string &variant = spec.variants[r].label;
        std::vector<double> rel, spd, resident_mb, eff_ratio;
        for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
            const auto &w = spec.workloads[i];
            const CellOutcome *rb =
                sweep.find(w, Policy::Baseline, variant);
            const CellOutcome *ru = sweep.find(w, Policy::Ue, variant);
            if (!rb || !rb->ok || !ru || !ru->ok) {
                warn("fig17: skipping %s at ratio %s (cell failed)",
                     w.c_str(), variant.c_str());
                continue;
            }
            if (r == 0)
                base_at_1[i] = static_cast<double>(rb->result.cycles);
            rel.push_back(static_cast<double>(rb->result.cycles) /
                          base_at_1[i]);
            spd.push_back(static_cast<double>(rb->result.cycles) /
                          static_cast<double>(ru->result.cycles));
            const double resident =
                static_cast<double>(rb->result.footprint_bytes);
            resident_mb.push_back(resident / (1024.0 * 1024.0));
            if (rb->result.capacity_pages > 0 && resident > 0.0) {
                eff_ratio.push_back(
                    static_cast<double>(rb->result.capacity_pages *
                                        page_bytes) /
                    resident);
            }
        }
        t.addRow({variant, Table::num(amean(resident_mb), 1),
                  eff_ratio.empty() ? "unlim"
                                    : Table::num(amean(eff_ratio), 2),
                  Table::num(amean(rel), 2), Table::num(amean(spd), 2)});
    }
    t.emit(opt.csv);

    std::printf("\npaper: UE speedup 1.0 at ratio 1.0, growing to "
                "1.63x at ratio 0.1\n");
    return 0;
}
