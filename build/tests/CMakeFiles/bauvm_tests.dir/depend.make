# Empty dependencies file for bauvm_tests.
# This may be replaced when dependencies are built.
