
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assoc_array.cc" "tests/CMakeFiles/bauvm_tests.dir/test_assoc_array.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_assoc_array.cc.o.d"
  "/root/repo/tests/test_block_dispatcher.cc" "tests/CMakeFiles/bauvm_tests.dir/test_block_dispatcher.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_block_dispatcher.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/bauvm_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_etc.cc" "tests/CMakeFiles/bauvm_tests.dir/test_etc.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_etc.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/bauvm_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_geometry_sweeps.cc" "tests/CMakeFiles/bauvm_tests.dir/test_geometry_sweeps.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_geometry_sweeps.cc.o.d"
  "/root/repo/tests/test_gpu_units.cc" "tests/CMakeFiles/bauvm_tests.dir/test_gpu_units.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_gpu_units.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/bauvm_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/bauvm_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_mem_units.cc" "tests/CMakeFiles/bauvm_tests.dir/test_mem_units.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_mem_units.cc.o.d"
  "/root/repo/tests/test_memory_hierarchy.cc" "tests/CMakeFiles/bauvm_tests.dir/test_memory_hierarchy.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_memory_hierarchy.cc.o.d"
  "/root/repo/tests/test_regular_workloads.cc" "tests/CMakeFiles/bauvm_tests.dir/test_regular_workloads.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_regular_workloads.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/bauvm_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sm.cc" "tests/CMakeFiles/bauvm_tests.dir/test_sm.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_sm.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/bauvm_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/bauvm_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_uvm_runtime.cc" "tests/CMakeFiles/bauvm_tests.dir/test_uvm_runtime.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_uvm_runtime.cc.o.d"
  "/root/repo/tests/test_uvm_units.cc" "tests/CMakeFiles/bauvm_tests.dir/test_uvm_units.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_uvm_units.cc.o.d"
  "/root/repo/tests/test_virtual_thread.cc" "tests/CMakeFiles/bauvm_tests.dir/test_virtual_thread.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_virtual_thread.cc.o.d"
  "/root/repo/tests/test_workloads_functional.cc" "tests/CMakeFiles/bauvm_tests.dir/test_workloads_functional.cc.o" "gcc" "tests/CMakeFiles/bauvm_tests.dir/test_workloads_functional.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bauvm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
