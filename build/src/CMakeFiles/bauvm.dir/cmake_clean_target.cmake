file(REMOVE_RECURSE
  "libbauvm.a"
)
