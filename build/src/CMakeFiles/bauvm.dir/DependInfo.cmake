
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/bauvm.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/presets.cc" "src/CMakeFiles/bauvm.dir/core/presets.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/core/presets.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/bauvm.dir/core/report.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/core/report.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/bauvm.dir/core/system.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/core/system.cc.o.d"
  "/root/repo/src/etc/etc_framework.cc" "src/CMakeFiles/bauvm.dir/etc/etc_framework.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/etc/etc_framework.cc.o.d"
  "/root/repo/src/gpu/block_dispatcher.cc" "src/CMakeFiles/bauvm.dir/gpu/block_dispatcher.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/block_dispatcher.cc.o.d"
  "/root/repo/src/gpu/coalescer.cc" "src/CMakeFiles/bauvm.dir/gpu/coalescer.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/coalescer.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/bauvm.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/gpu/occupancy.cc" "src/CMakeFiles/bauvm.dir/gpu/occupancy.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/occupancy.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/CMakeFiles/bauvm.dir/gpu/sm.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/sm.cc.o.d"
  "/root/repo/src/gpu/virtual_thread.cc" "src/CMakeFiles/bauvm.dir/gpu/virtual_thread.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/virtual_thread.cc.o.d"
  "/root/repo/src/gpu/warp_program.cc" "src/CMakeFiles/bauvm.dir/gpu/warp_program.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/gpu/warp_program.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/bauvm.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/generator.cc" "src/CMakeFiles/bauvm.dir/graph/generator.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/graph/generator.cc.o.d"
  "/root/repo/src/graph/reference_algorithms.cc" "src/CMakeFiles/bauvm.dir/graph/reference_algorithms.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/graph/reference_algorithms.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/bauvm.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/bauvm.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/memory_hierarchy.cc" "src/CMakeFiles/bauvm.dir/mem/memory_hierarchy.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/memory_hierarchy.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/bauvm.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/page_table_walker.cc" "src/CMakeFiles/bauvm.dir/mem/page_table_walker.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/page_table_walker.cc.o.d"
  "/root/repo/src/mem/page_walk_cache.cc" "src/CMakeFiles/bauvm.dir/mem/page_walk_cache.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/page_walk_cache.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/bauvm.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/mem/tlb.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/bauvm.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/bauvm.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/bauvm.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/bauvm.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/sim/stats.cc.o.d"
  "/root/repo/src/uvm/compression.cc" "src/CMakeFiles/bauvm.dir/uvm/compression.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/compression.cc.o.d"
  "/root/repo/src/uvm/fault_buffer.cc" "src/CMakeFiles/bauvm.dir/uvm/fault_buffer.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/fault_buffer.cc.o.d"
  "/root/repo/src/uvm/gpu_memory_manager.cc" "src/CMakeFiles/bauvm.dir/uvm/gpu_memory_manager.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/gpu_memory_manager.cc.o.d"
  "/root/repo/src/uvm/lifetime_tracker.cc" "src/CMakeFiles/bauvm.dir/uvm/lifetime_tracker.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/lifetime_tracker.cc.o.d"
  "/root/repo/src/uvm/pcie_link.cc" "src/CMakeFiles/bauvm.dir/uvm/pcie_link.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/pcie_link.cc.o.d"
  "/root/repo/src/uvm/prefetcher.cc" "src/CMakeFiles/bauvm.dir/uvm/prefetcher.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/prefetcher.cc.o.d"
  "/root/repo/src/uvm/uvm_runtime.cc" "src/CMakeFiles/bauvm.dir/uvm/uvm_runtime.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/uvm/uvm_runtime.cc.o.d"
  "/root/repo/src/workloads/bc.cc" "src/CMakeFiles/bauvm.dir/workloads/bc.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/bc.cc.o.d"
  "/root/repo/src/workloads/bfs_variants.cc" "src/CMakeFiles/bauvm.dir/workloads/bfs_variants.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/bfs_variants.cc.o.d"
  "/root/repo/src/workloads/device_array.cc" "src/CMakeFiles/bauvm.dir/workloads/device_array.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/device_array.cc.o.d"
  "/root/repo/src/workloads/gc_variants.cc" "src/CMakeFiles/bauvm.dir/workloads/gc_variants.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/gc_variants.cc.o.d"
  "/root/repo/src/workloads/kcore.cc" "src/CMakeFiles/bauvm.dir/workloads/kcore.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/kcore.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/bauvm.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/regular_suite.cc" "src/CMakeFiles/bauvm.dir/workloads/regular_suite.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/regular_suite.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/CMakeFiles/bauvm.dir/workloads/sssp.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/sssp.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/bauvm.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/bauvm.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
