# Empty dependencies file for bauvm.
# This may be replaced when dependencies are built.
