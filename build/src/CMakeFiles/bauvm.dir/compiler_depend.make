# Empty compiler generated dependencies file for bauvm.
# This may be replaced when dependencies are built.
