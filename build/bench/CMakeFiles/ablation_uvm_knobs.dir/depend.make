# Empty dependencies file for ablation_uvm_knobs.
# This may be replaced when dependencies are built.
