file(REMOVE_RECURSE
  "CMakeFiles/ablation_uvm_knobs.dir/ablation_uvm_knobs.cc.o"
  "CMakeFiles/ablation_uvm_knobs.dir/ablation_uvm_knobs.cc.o.d"
  "ablation_uvm_knobs"
  "ablation_uvm_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uvm_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
