file(REMOVE_RECURSE
  "CMakeFiles/fig05_context_switch_overhead.dir/fig05_context_switch_overhead.cc.o"
  "CMakeFiles/fig05_context_switch_overhead.dir/fig05_context_switch_overhead.cc.o.d"
  "fig05_context_switch_overhead"
  "fig05_context_switch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_context_switch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
