# Empty dependencies file for fig05_context_switch_overhead.
# This may be replaced when dependencies are built.
