file(REMOVE_RECURSE
  "CMakeFiles/fig16_batch_distribution.dir/fig16_batch_distribution.cc.o"
  "CMakeFiles/fig16_batch_distribution.dir/fig16_batch_distribution.cc.o.d"
  "fig16_batch_distribution"
  "fig16_batch_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_batch_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
