# Empty dependencies file for fig16_batch_distribution.
# This may be replaced when dependencies are built.
