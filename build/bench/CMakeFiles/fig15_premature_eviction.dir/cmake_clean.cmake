file(REMOVE_RECURSE
  "CMakeFiles/fig15_premature_eviction.dir/fig15_premature_eviction.cc.o"
  "CMakeFiles/fig15_premature_eviction.dir/fig15_premature_eviction.cc.o.d"
  "fig15_premature_eviction"
  "fig15_premature_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_premature_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
