# Empty dependencies file for fig15_premature_eviction.
# This may be replaced when dependencies are built.
