# Empty compiler generated dependencies file for fig03_per_page_fault_time.
# This may be replaced when dependencies are built.
