file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_primitives.dir/micro_sim_primitives.cc.o"
  "CMakeFiles/micro_sim_primitives.dir/micro_sim_primitives.cc.o.d"
  "micro_sim_primitives"
  "micro_sim_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
