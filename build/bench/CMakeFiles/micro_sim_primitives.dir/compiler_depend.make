# Empty compiler generated dependencies file for micro_sim_primitives.
# This may be replaced when dependencies are built.
