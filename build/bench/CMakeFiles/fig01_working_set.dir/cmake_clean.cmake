file(REMOVE_RECURSE
  "CMakeFiles/fig01_working_set.dir/fig01_working_set.cc.o"
  "CMakeFiles/fig01_working_set.dir/fig01_working_set.cc.o.d"
  "fig01_working_set"
  "fig01_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
