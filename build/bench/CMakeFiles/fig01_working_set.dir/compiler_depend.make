# Empty compiler generated dependencies file for fig01_working_set.
# This may be replaced when dependencies are built.
