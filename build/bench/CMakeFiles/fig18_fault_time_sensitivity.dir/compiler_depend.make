# Empty compiler generated dependencies file for fig18_fault_time_sensitivity.
# This may be replaced when dependencies are built.
