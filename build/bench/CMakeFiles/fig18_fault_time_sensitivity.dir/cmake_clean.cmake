file(REMOVE_RECURSE
  "CMakeFiles/fig18_fault_time_sensitivity.dir/fig18_fault_time_sensitivity.cc.o"
  "CMakeFiles/fig18_fault_time_sensitivity.dir/fig18_fault_time_sensitivity.cc.o.d"
  "fig18_fault_time_sensitivity"
  "fig18_fault_time_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_fault_time_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
