# Empty compiler generated dependencies file for fig17_oversub_sensitivity.
# This may be replaced when dependencies are built.
