file(REMOVE_RECURSE
  "CMakeFiles/fig17_oversub_sensitivity.dir/fig17_oversub_sensitivity.cc.o"
  "CMakeFiles/fig17_oversub_sensitivity.dir/fig17_oversub_sensitivity.cc.o.d"
  "fig17_oversub_sensitivity"
  "fig17_oversub_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_oversub_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
