file(REMOVE_RECURSE
  "CMakeFiles/fig12_batch_count.dir/fig12_batch_count.cc.o"
  "CMakeFiles/fig12_batch_count.dir/fig12_batch_count.cc.o.d"
  "fig12_batch_count"
  "fig12_batch_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_batch_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
