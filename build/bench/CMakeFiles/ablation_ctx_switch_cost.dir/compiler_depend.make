# Empty compiler generated dependencies file for ablation_ctx_switch_cost.
# This may be replaced when dependencies are built.
