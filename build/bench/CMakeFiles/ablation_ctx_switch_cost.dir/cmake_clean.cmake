file(REMOVE_RECURSE
  "CMakeFiles/ablation_ctx_switch_cost.dir/ablation_ctx_switch_cost.cc.o"
  "CMakeFiles/ablation_ctx_switch_cost.dir/ablation_ctx_switch_cost.cc.o.d"
  "ablation_ctx_switch_cost"
  "ablation_ctx_switch_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ctx_switch_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
