file(REMOVE_RECURSE
  "CMakeFiles/fig14_batch_time.dir/fig14_batch_time.cc.o"
  "CMakeFiles/fig14_batch_time.dir/fig14_batch_time.cc.o.d"
  "fig14_batch_time"
  "fig14_batch_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_batch_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
