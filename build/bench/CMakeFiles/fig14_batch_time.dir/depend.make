# Empty dependencies file for fig14_batch_time.
# This may be replaced when dependencies are built.
