file(REMOVE_RECURSE
  "CMakeFiles/fig08_ideal_eviction.dir/fig08_ideal_eviction.cc.o"
  "CMakeFiles/fig08_ideal_eviction.dir/fig08_ideal_eviction.cc.o.d"
  "fig08_ideal_eviction"
  "fig08_ideal_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ideal_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
