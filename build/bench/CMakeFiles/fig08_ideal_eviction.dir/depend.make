# Empty dependencies file for fig08_ideal_eviction.
# This may be replaced when dependencies are built.
