# Empty compiler generated dependencies file for pagerank_oversubscription.
# This may be replaced when dependencies are built.
