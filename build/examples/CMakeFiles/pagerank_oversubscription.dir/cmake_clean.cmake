file(REMOVE_RECURSE
  "CMakeFiles/pagerank_oversubscription.dir/pagerank_oversubscription.cpp.o"
  "CMakeFiles/pagerank_oversubscription.dir/pagerank_oversubscription.cpp.o.d"
  "pagerank_oversubscription"
  "pagerank_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
