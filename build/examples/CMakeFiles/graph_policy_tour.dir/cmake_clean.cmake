file(REMOVE_RECURSE
  "CMakeFiles/graph_policy_tour.dir/graph_policy_tour.cpp.o"
  "CMakeFiles/graph_policy_tour.dir/graph_policy_tour.cpp.o.d"
  "graph_policy_tour"
  "graph_policy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_policy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
