# Empty dependencies file for graph_policy_tour.
# This may be replaced when dependencies are built.
