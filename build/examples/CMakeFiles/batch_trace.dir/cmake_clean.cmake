file(REMOVE_RECURSE
  "CMakeFiles/batch_trace.dir/batch_trace.cpp.o"
  "CMakeFiles/batch_trace.dir/batch_trace.cpp.o.d"
  "batch_trace"
  "batch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
