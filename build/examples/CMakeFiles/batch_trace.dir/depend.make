# Empty dependencies file for batch_trace.
# This may be replaced when dependencies are built.
